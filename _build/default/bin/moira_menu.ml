(* The menu-driven admin client, in the style of Moira's interactive
   programs (built on the section 5.6.3 menu package).  Boots a small
   simulated Athena, authenticates as the admin, and offers hierarchical
   menus over the query handles.

     dune exec bin/moira_menu.exe
     printf 'users\nshow a*\nup\nquit\n' | dune exec bin/moira_menu.exe *)

open Workload

let q c name args =
  match Moira.Mr_client.mr_query_list c ~name args with
  | Ok tuples -> List.map (String.concat ", ") tuples
  | Error code -> [ Comerr.Com_err.error_message code ]

let build_menus tb c =
  let users =
    Moira.Menu.create ~title:"users"
    |> Moira.Menu.command ~key:"show" ~help:"show <login-pattern>"
         (function
           | [ pat ] -> q c "get_user_by_login" [ pat ]
           | _ -> [ "usage: show <login-pattern>" ])
    |> Moira.Menu.command ~key:"finger" ~help:"finger <login>"
         (function
           | [ login ] -> q c "get_finger_by_login" [ login ]
           | _ -> [ "usage: finger <login>" ])
    |> Moira.Menu.command ~key:"shell" ~help:"shell <login> <shell>"
         (function
           | [ login; shell ] -> q c "update_user_shell" [ login; shell ]
           | _ -> [ "usage: shell <login> <shell>" ])
    |> Moira.Menu.command ~key:"status" ~help:"status <login> <0-4>"
         (function
           | [ login; st ] -> q c "update_user_status" [ login; st ]
           | _ -> [ "usage: status <login> <status>" ])
    |> Moira.Menu.command ~key:"pobox" ~help:"pobox <login>"
         (function
           | [ login ] -> q c "get_pobox" [ login ]
           | _ -> [ "usage: pobox <login>" ])
  in
  let lists =
    Moira.Menu.create ~title:"lists"
    |> Moira.Menu.command ~key:"show" ~help:"show <list-pattern>"
         (function
           | [ pat ] -> q c "get_list_info" [ pat ]
           | _ -> [ "usage: show <list-pattern>" ])
    |> Moira.Menu.command ~key:"members" ~help:"members <list>"
         (function
           | [ name ] -> q c "get_members_of_list" [ name ]
           | _ -> [ "usage: members <list>" ])
    |> Moira.Menu.command ~key:"add" ~help:"add <list> <type> <member>"
         (function
           | [ l; ty; m ] -> q c "add_member_to_list" [ l; ty; m ]
           | _ -> [ "usage: add <list> <type> <member>" ])
    |> Moira.Menu.command ~key:"remove" ~help:"remove <list> <type> <member>"
         (function
           | [ l; ty; m ] -> q c "delete_member_from_list" [ l; ty; m ]
           | _ -> [ "usage: remove <list> <type> <member>" ])
  in
  let machines =
    Moira.Menu.create ~title:"machines"
    |> Moira.Menu.command ~key:"show" ~help:"show <host-pattern>"
         (function
           | [ pat ] -> q c "get_machine" [ pat ]
           | _ -> [ "usage: show <host-pattern>" ])
    |> Moira.Menu.command ~key:"clusters" ~help:"clusters <host-pattern>"
         (function
           | [ pat ] -> q c "get_machine_to_cluster_map" [ pat; "*" ]
           | _ -> [ "usage: clusters <host-pattern>" ])
  in
  let dcm =
    Moira.Menu.create ~title:"dcm"
    |> Moira.Menu.command ~key:"services" ~help:"service table"
         (fun _ -> q c "get_server_info" [ "*" ])
    |> Moira.Menu.command ~key:"hosts" ~help:"hosts <service>"
         (function
           | [ svc ] -> q c "get_server_host_info" [ svc; "*" ]
           | _ -> [ "usage: hosts <service>" ])
    |> Moira.Menu.command ~key:"trigger" ~help:"run the DCM now"
         (fun _ ->
           match
             Moira.Mr_client.mr_query c ~name:"trigger_dcm" []
               ~callback:(fun _ -> ())
           with
           | 0 ->
               let reports = Dcm.Manager.reports tb.Testbed.dcm in
               [ Printf.sprintf "DCM run complete (%d runs so far)"
                   (List.length reports) ]
           | code -> [ Comerr.Com_err.error_message code ])
  in
  Moira.Menu.create ~title:"moira"
  |> Moira.Menu.submenu ~key:"users" ~help:"accounts and poboxes" users
  |> Moira.Menu.submenu ~key:"lists" ~help:"lists and memberships" lists
  |> Moira.Menu.submenu ~key:"machines" ~help:"machines and clusters" machines
  |> Moira.Menu.submenu ~key:"dcm" ~help:"service management" dcm
  |> Moira.Menu.command ~key:"stats" ~help:"table statistics"
       (fun _ -> q c "get_all_table_stats" [])

let () =
  let tb = Testbed.create () in
  let ws = tb.Testbed.built.Population.workstation_machines.(0) in
  let c = Testbed.admin_client tb ~src:ws in
  print_endline "connected to the simulated Moira server as admin; ? for help";
  Moira.Menu.run_channels (build_menus tb c) stdin stdout
