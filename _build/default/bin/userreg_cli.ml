(* The userreg program (paper section 5.10): "a student walks up to a
   workstation and logs in using the username of 'register', password
   'athena'.  This pops up a forms-like interface which prompts him for
   his first name, middle initial, last name, and student ID number",
   then a login name and password.

   Runs against a simulated Athena whose registrar tape is seeded from
   the command line (so any identity you type can be "on the tape").

     dune exec bin/userreg_cli.exe
     printf 'Edsger\nW\nDijkstra\n930-11-0168\newd\nsecret\n' | \
       dune exec bin/userreg_cli.exe                                    *)

open Workload

let prompt label =
  Printf.printf "%s: %!" label;
  try String.trim (input_line stdin) with End_of_file -> exit 1

let () =
  print_endline "Athena workstation login: register";
  print_endline "Password: athena";
  print_endline "";
  print_endline "*** Welcome to Athena user registration ***";
  let first = prompt "First name" in
  let middle = prompt "Middle initial" in
  let last = prompt "Last name" in
  let id_number = prompt "Student ID number" in

  (* boot the campus with this student on the registrar's tape *)
  let tb = Testbed.create () in
  (match
     Userreg.load_registrar_tape tb.Testbed.glue
       [ { Userreg.first; middle; last; id_number; class_year = "1992" } ]
   with
  | Ok _ -> ()
  | Error c -> failwith (Comerr.Com_err.error_message c));
  let ws = tb.Testbed.built.Population.workstation_machines.(0) in
  let server = tb.Testbed.built.Population.moira_machine in

  (match
     Userreg.verify_user tb.Testbed.net ~src:ws ~server ~first ~last
       ~id_number
   with
  | Ok Userreg.Reg_ok ->
      Printf.printf "\nHello %s %s — you may register.\n" first last
  | Ok Userreg.Already_registered ->
      print_endline "You are already registered.";
      exit 1
  | Ok Userreg.Not_found ->
      print_endline "Sorry, you are not in the registration database.";
      exit 1
  | Error e ->
      print_endline ("Verification failed: " ^ Userreg.reg_error_to_string e);
      exit 1);

  let rec choose_login () =
    let login = prompt "Desired login name" in
    let password = prompt "Initial password" in
    match
      Userreg.register tb.Testbed.net ~src:ws ~server ~first ~middle ~last
        ~id_number ~login ~password
    with
    | Ok () -> login
    | Error Userreg.Login_taken ->
        print_endline "That login name is already taken; try another.";
        choose_login ()
    | Error e ->
        print_endline ("Registration failed: " ^ Userreg.reg_error_to_string e);
        exit 1
  in
  let login = choose_login () in
  Printf.printf
    "\nAccount %s established.  Pending propagation of information to\n\
     hesiod, the mail hub, and your home fileserver (at most six hours),\n\
     your account will be usable everywhere.\n"
    login;

  (* show the propagation actually happening *)
  Testbed.run_hours tb 13;
  let _, hes = Testbed.first_hesiod tb in
  (match Hesiod.Hes_server.resolve_local hes ~name:login ~ty:"pobox" with
  | [ line ] -> Printf.printf "...13 hours later, hesiod says: %s\n" line
  | _ -> print_endline "...propagation failed?!");
  print_endline "Registration complete."
