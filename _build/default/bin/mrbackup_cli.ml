(* mrbackup / mrrestore (section 5.2.2) against real files: dump a
   simulated Athena's database into a directory of colon-separated ASCII
   files, and restore such a directory into a fresh database.

     dune exec bin/mrbackup_cli.exe -- dump --users 500 --out /tmp/backup_1
     dune exec bin/mrbackup_cli.exe -- restore --from /tmp/backup_1     *)

open Cmdliner
open Workload

let dump users out =
  let spec = { Population.small with Population.users } in
  let tb = Testbed.create ~spec () in
  Testbed.run_hours tb 1;
  Moira.Mdb.sync_tblstats tb.Testbed.mdb;
  let files = Relation.Backup.dump (Moira.Mdb.db tb.Testbed.mdb) in
  (try Unix.mkdir out 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  List.iter
    (fun (name, contents) ->
      let path = Filename.concat out name in
      let oc = open_out path in
      output_string oc contents;
      close_out oc;
      Printf.printf "  %-14s %8d bytes\n" name (String.length contents))
    files;
  (* the journal rides along, for replay past the dump *)
  let oc = open_out (Filename.concat out "journal") in
  output_string oc
    (Relation.Journal.to_lines (Moira.Mdb.journal tb.Testbed.mdb));
  close_out oc;
  Printf.printf "dumped %d relations (+journal) to %s\n" (List.length files)
    out;
  0

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let restore from yes =
  if not yes then begin
    (* mrrestore's famous prompt *)
    Printf.printf "Do you *REALLY* want to wipe the Moira database? (yes or no): %!";
    match try input_line stdin with End_of_file -> "no" with
    | "yes" -> ()
    | _ ->
        print_endline "aborted";
        exit 1
  end;
  let mdb = Moira.Mdb.create ~clock:(fun () -> 0) in
  let loaded = ref 0 in
  List.iter
    (fun name ->
      let path = Filename.concat from name in
      if Sys.file_exists path then begin
        Printf.printf "Working on %s\n" path;
        ignore
          (Relation.Backup.restore_table (Moira.Mdb.table mdb name)
             (read_file path));
        incr loaded
      end)
    (Relation.Db.table_names (Moira.Mdb.db mdb));
  Printf.printf "restored %d relations; %d users, %d lists, %d machines\n"
    !loaded
    (Relation.Table.cardinal (Moira.Mdb.table mdb "users"))
    (Relation.Table.cardinal (Moira.Mdb.table mdb "list"))
    (Relation.Table.cardinal (Moira.Mdb.table mdb "machine"));
  0

let users_arg =
  Arg.(value & opt int 200 & info [ "users" ] ~docv:"N"
         ~doc:"Simulated population size for the dump.")

let dump_cmd =
  let out =
    Arg.(value & opt string "/tmp/moira_backup_1"
           & info [ "out" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  Cmd.v
    (Cmd.info "dump" ~doc:"Dump every relation to ASCII files.")
    Term.(const dump $ users_arg $ out)

let restore_cmd =
  let from =
    Arg.(value & opt string "/tmp/moira_backup_1"
           & info [ "from" ] ~docv:"DIR" ~doc:"Backup directory to load.")
  in
  let yes =
    Arg.(value & flag & info [ "yes" ] ~doc:"Skip the confirmation prompt.")
  in
  Cmd.v
    (Cmd.info "restore" ~doc:"Restore a dump into a fresh database.")
    Term.(const restore $ from $ yes)

let () =
  let info =
    Cmd.info "mrbackup_cli"
      ~doc:"The mrbackup/mrrestore pair of paper section 5.2.2."
  in
  exit (Cmd.eval' (Cmd.group info [ dump_cmd; restore_cmd ]))
