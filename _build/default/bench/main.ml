(* The benchmark harness: one entry per table/figure/claim in the paper's
   evaluation (see DESIGN.md's experiment index and EXPERIMENTS.md for
   paper-vs-measured numbers).

     dune exec bench/main.exe            -- run everything
     dune exec bench/main.exe -- table1  -- one experiment (table1, dcm,
                                            connect, glue, noop, backup,
                                            robust, access, dispatch)   *)

open Workload

let line = String.make 78 '-'

let header title =
  Printf.printf "\n%s\n%s\n%s\n%!" line title line

(* ------------------------------------------------------------------ *)
(* Bechamel plumbing for the real-time microbenchmarks.                *)

let run_bechamel ~name tests =
  let open Bechamel in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:None
      ~stabilize:true ()
  in
  let measure = Toolkit.Instance.monotonic_clock in
  let raw = Benchmark.all cfg [ measure ] (Test.make_grouped ~name tests) in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols measure raw in
  let rows =
    Hashtbl.fold
      (fun key result acc ->
        match Analyze.OLS.estimates result with
        | Some (est :: _) -> (key, est) :: acc
        | _ -> acc)
      results []
  in
  List.iter
    (fun (key, est) ->
      if est >= 1_000_000.0 then
        Printf.printf "  %-46s %12.2f ms/op\n" key (est /. 1_000_000.)
      else if est >= 1_000.0 then
        Printf.printf "  %-46s %12.2f us/op\n" key (est /. 1_000.)
      else Printf.printf "  %-46s %12.1f ns/op\n" key est)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* T1: the File Organization table of section 5.1.G.                   *)

(* Paper values: service, file, size, number, propagations, interval *)
let paper_t1 =
  [
    ("HESIOD", "cluster.db", 53656, 1, 1, "6 hours");
    ("HESIOD", "filsys.db", 541482, 1, 1, "6 hours");
    ("HESIOD", "gid.db", 341012, 1, 1, "6 hours");
    ("HESIOD", "group.db", 453636, 1, 1, "6 hours");
    ("HESIOD", "grplist.db", 357662, 1, 1, "6 hours");
    ("HESIOD", "passwd.db", 712446, 1, 1, "6 hours");
    ("HESIOD", "pobox.db", 415688, 1, 1, "6 hours");
    ("HESIOD", "printcap.db", 4318, 1, 1, "6 hours");
    ("HESIOD", "service.db", 9052, 1, 1, "6 hours");
    ("HESIOD", "sloc.db", 3734, 1, 1, "6 hours");
    ("HESIOD", "uid.db", 256381, 1, 1, "6 hours");
    ("NFS", "<partition>.dirs", 2784, 20, 20, "12 hours");
    ("NFS", "<partition>.quotas", 1205, 20, 20, "12 hours");
    ("NFS", "credentials", 152648, 1, 20, "12 hours");
    ("MAIL", "/usr/lib/aliases", 445000, 1, 1, "24 hours");
    ("ZEPHYR", "class.acl", 100, 6, 18, "24 hours");
  ]

let mean = function
  | [] -> 0
  | xs -> List.fold_left ( + ) 0 xs / List.length xs

let interval_string mdb service =
  let tbl = Moira.Mdb.table mdb "servers" in
  match
    Relation.Table.select_one tbl (Relation.Pred.eq_str "name" service)
  with
  | Some (_, row) ->
      let minutes =
        Relation.Value.int (Relation.Table.field tbl row "update_int")
      in
      Printf.sprintf "%d hours" (minutes / 60)
  | None -> "?"

let bench_table1 () =
  header
    "T1 (section 5.1.G): File Organization -- synthetic 10,000-user Athena";
  Printf.printf "building paper-scale population, simulating 25 hours...\n%!";
  let tb = Testbed.create ~spec:Population.default () in
  Testbed.run_hours tb 25;
  let mdb = tb.Testbed.mdb in
  let built = tb.Testbed.built in
  let hes_hosts = Array.length built.Population.hesiod_machines in
  let nfs_hosts = Array.length built.Population.nfs_machines in
  let zep_hosts = Array.length built.Population.zephyr_machines in
  (* measured rows: (service, file, size, number, propagations) *)
  let measured = ref [] in
  let add service file size number props =
    measured := (service, file, size, number, props) :: !measured
  in
  (match Dcm.Manager.last_output tb.Testbed.dcm ~service:"HESIOD" with
  | Some out ->
      List.iter
        (fun (name, contents) ->
          add "HESIOD" name (String.length contents) 1 hes_hosts)
        out.Dcm.Gen.common
  | None -> ());
  (match Dcm.Manager.last_output tb.Testbed.dcm ~service:"NFS" with
  | Some out ->
      let by_kind = Hashtbl.create 7 in
      List.iter
        (fun (_, files) ->
          List.iter
            (fun (name, contents) ->
              let kind =
                if name = "credentials" then "credentials"
                else if Filename.check_suffix name ".dirs" then
                  "<partition>.dirs"
                else "<partition>.quotas"
              in
              let sizes =
                Option.value (Hashtbl.find_opt by_kind kind) ~default:[]
              in
              Hashtbl.replace by_kind kind (String.length contents :: sizes))
            files)
        out.Dcm.Gen.per_host;
      Hashtbl.iter
        (fun kind sizes ->
          let number =
            if kind = "credentials" then 1 else List.length sizes
          in
          add "NFS" kind (mean sizes) number nfs_hosts)
        by_kind
  | None -> ());
  (match Dcm.Manager.last_output tb.Testbed.dcm ~service:"MAIL" with
  | Some out ->
      List.iter
        (fun (name, contents) ->
          if name = "aliases" then
            add "MAIL" "/usr/lib/aliases" (String.length contents) 1 1)
        out.Dcm.Gen.common
  | None -> ());
  (match Dcm.Manager.last_output tb.Testbed.dcm ~service:"ZEPHYR" with
  | Some out ->
      let sizes =
        List.map (fun (_, c) -> String.length c) out.Dcm.Gen.common
      in
      add "ZEPHYR" "class.acl" (mean sizes) (List.length sizes)
        (List.length sizes * zep_hosts)
  | None -> ());
  let measured = List.rev !measured in
  Printf.printf "%-8s %-19s | %8s %4s %5s | %8s %4s %5s  %s\n" "Service"
    "File" "paper-sz" "num" "prop" "ours-sz" "num" "prop" "interval";
  Printf.printf "%s\n" line;
  List.iter
    (fun (svc, file, psize, pnum, pprop, _pint) ->
      let msize, mnum, mprop =
        match
          List.find_opt (fun (s, f, _, _, _) -> s = svc && f = file) measured
        with
        | Some (_, _, sz, num, prop) -> (sz, num, prop)
        | None -> (0, 0, 0)
      in
      Printf.printf "%-8s %-19s | %8d %4d %5d | %8d %4d %5d  %s\n" svc file
        psize pnum pprop msize mnum mprop
        (interval_string mdb svc))
    paper_t1;
  let files_total =
    List.fold_left (fun acc (_, _, _, n, _) -> acc + n) 0 measured
  in
  let props_total =
    List.fold_left (fun acc (_, _, _, _, p) -> acc + p) 0 measured
  in
  Printf.printf "%s\n" line;
  Printf.printf "%-28s | %8s %4d %5d | %8s %4d %5d\n" "TOTAL" "" 59 90 ""
    files_total props_total;
  Printf.printf
    "\n(our MAIL service also ships the mailhub /etc/passwd, which the\n\
    \ paper's table omits; it is excluded from the totals above)\n"

(* ------------------------------------------------------------------ *)
(* E2: incremental generation over a simulated day.                    *)

let bench_dcm () =
  header
    "E2 (section 5.1.E): files are generated/propagated only on change";
  let tb = Testbed.create ~spec:Population.small () in
  ignore
    (Sim.Engine.schedule tb.Testbed.engine
       ~at:(Sim.Engine.now tb.Testbed.engine + (9 * 3600 * 1000))
       "change"
       (fun () ->
         ignore
           (Moira.Glue.query tb.Testbed.glue ~name:"update_user_shell"
              [ tb.Testbed.built.Population.logins.(0); "/bin/changed" ])));
  Testbed.run_hours tb 26;
  let reports = Dcm.Manager.reports tb.Testbed.dcm in
  Printf.printf
    "26 simulated hours, DCM cron every 15 min (%d invocations); one\n\
     user change at t+9h.  Generation events:\n\n"
    (List.length reports);
  Printf.printf "%-10s %-8s %s\n" "t (h)" "service" "result";
  let t0 = (List.hd reports).Dcm.Manager.at in
  let shown = ref 0 in
  List.iter
    (fun r ->
      List.iter
        (fun s ->
          match s.Dcm.Manager.gen with
          | Dcm.Manager.Generated bytes ->
              incr shown;
              Printf.printf "%-10.2f %-8s generated %d bytes\n"
                (float_of_int (r.Dcm.Manager.at - t0) /. 3600.)
                s.Dcm.Manager.service bytes
          | _ -> ())
        r.Dcm.Manager.services)
    reports;
  let no_changes =
    List.fold_left
      (fun acc r ->
        acc
        + List.length
            (List.filter
               (fun s -> s.Dcm.Manager.gen = Dcm.Manager.No_change)
               r.Dcm.Manager.services))
      0 reports
  in
  Printf.printf
    "\ngeneration events: %d   MR_NO_CHANGE suppressions: %d\n\
     (first-ever builds at t+0.25h; the t+9h change regenerates each\n\
     service exactly once, at its next interval boundary)\n"
    !shown no_changes

(* ------------------------------------------------------------------ *)
(* E3: one backend per server vs one per connection (section 5.4).     *)

let session_cost ~backend n =
  let tb = Testbed.create ~backend () in
  let ws = tb.Testbed.built.Population.workstation_machines.(0) in
  let start = Sim.Engine.now tb.Testbed.engine in
  for _ = 1 to n do
    let c = Testbed.client tb ~src:ws in
    ignore
      (Moira.Mr_client.mr_connect c
         ~dst:tb.Testbed.built.Population.moira_machine);
    ignore (Moira.Mr_client.mr_query_list c ~name:"get_machine" [ "*" ]);
    ignore (Moira.Mr_client.mr_disconnect c)
  done;
  Sim.Engine.now tb.Testbed.engine - start

let bench_connect () =
  header
    "E3 (section 5.4): INGRES backend per server (Moira) vs per\n\
     connection (Athenareg), 1.5 s spawn cost -- simulated ms for N\n\
     one-query client sessions";
  Printf.printf "%6s %18s %18s %8s\n" "N" "moira (ms)" "athenareg (ms)"
    "slowdown";
  List.iter
    (fun n ->
      let m = session_cost ~backend:(Gdb.Server.Per_server 1500) n in
      let a = session_cost ~backend:(Gdb.Server.Per_connection 1500) n in
      Printf.printf "%6d %18d %18d %7.1fx\n" n m a
        (float_of_int a /. float_of_int (max 1 m)))
    [ 1; 5; 10; 20; 50 ]

(* ------------------------------------------------------------------ *)
(* E4: RPC application library vs direct glue library (section 5.6).   *)

let bench_glue () =
  header
    "E4 (section 5.6): direct \"glue\" library vs RPC application\n\
     library -- same query, real time per operation";
  let tb = Testbed.create () in
  let ws = tb.Testbed.built.Population.workstation_machines.(0) in
  let c = Testbed.admin_client tb ~src:ws in
  let login = tb.Testbed.built.Population.logins.(0) in
  run_bechamel ~name:"E4"
    [
      Bechamel.Test.make ~name:"rpc:get_user_by_login"
        (Bechamel.Staged.stage (fun () ->
             ignore
               (Moira.Mr_client.mr_query_list c ~name:"get_user_by_login"
                  [ login ])));
      Bechamel.Test.make ~name:"glue:get_user_by_login"
        (Bechamel.Staged.stage (fun () ->
             ignore
               (Moira.Glue.query tb.Testbed.glue ~name:"get_user_by_login"
                  [ login ])));
    ];
  let t0 = Sim.Engine.now tb.Testbed.engine in
  for _ = 1 to 100 do
    ignore
      (Moira.Mr_client.mr_query_list c ~name:"get_user_by_login" [ login ])
  done;
  let rpc_sim = Sim.Engine.now tb.Testbed.engine - t0 in
  let t0 = Sim.Engine.now tb.Testbed.engine in
  for _ = 1 to 100 do
    ignore
      (Moira.Glue.query tb.Testbed.glue ~name:"get_user_by_login" [ login ])
  done;
  let glue_sim = Sim.Engine.now tb.Testbed.engine - t0 in
  Printf.printf
    "\nsimulated network time for 100 queries: rpc %d ms, glue %d ms\n"
    rpc_sim glue_sim

(* ------------------------------------------------------------------ *)
(* E5: the Noop request -- RPC layer profiling (section 5.3).          *)

let bench_noop () =
  header "E5 (section 5.3): Noop round-trip and wire codec costs";
  let tb = Testbed.create () in
  let ws = tb.Testbed.built.Population.workstation_machines.(0) in
  let c = Testbed.admin_client tb ~src:ws in
  let req =
    {
      Gdb.Wire.version = Gdb.Wire.protocol_version;
      conn = 3;
      op = 18;
      args = [ "get_user_by_login"; "somebody" ];
    }
  in
  let encoded = Gdb.Wire.encode_request req in
  run_bechamel ~name:"E5"
    [
      Bechamel.Test.make ~name:"mr_noop round-trip"
        (Bechamel.Staged.stage (fun () ->
             ignore (Moira.Mr_client.mr_noop c)));
      Bechamel.Test.make ~name:"wire encode_request"
        (Bechamel.Staged.stage (fun () ->
             ignore (Gdb.Wire.encode_request req)));
      Bechamel.Test.make ~name:"wire decode_request"
        (Bechamel.Staged.stage (fun () ->
             ignore (Gdb.Wire.decode_request encoded)));
    ]

(* ------------------------------------------------------------------ *)
(* E6: the ASCII backup (section 5.2.2).                               *)

let bench_backup () =
  header
    "E6 (section 5.2.2): mrbackup dump of the full 10,000-user database\n\
     (paper: ~3.2 MB of ASCII)";
  let tb = Testbed.create ~spec:Population.default () in
  let mdb = tb.Testbed.mdb in
  Moira.Mdb.sync_tblstats mdb;
  let t0 = Unix.gettimeofday () in
  let dump = Relation.Backup.dump (Moira.Mdb.db mdb) in
  let dump_t = Unix.gettimeofday () -. t0 in
  let size =
    List.fold_left (fun acc (_, s) -> acc + String.length s) 0 dump
  in
  Printf.printf "dump: %d bytes (%.2f MB) in %.3f s real time\n" size
    (float_of_int size /. 1_048_576.)
    dump_t;
  List.iter
    (fun (name, contents) ->
      if String.length contents > 100_000 then
        Printf.printf "  %-14s %9d bytes\n" name (String.length contents))
    dump;
  let mdb2 =
    Moira.Mdb.create ~clock:(Sim.Engine.clock_sec tb.Testbed.engine)
  in
  let t0 = Unix.gettimeofday () in
  Relation.Backup.restore (Moira.Mdb.db mdb2) dump;
  Printf.printf "restore: %.3f s real time; users after restore: %d\n"
    (Unix.gettimeofday () -. t0)
    (Relation.Table.cardinal (Moira.Mdb.table mdb2 "users"));
  Printf.printf "journal entries available for replay: %d\n"
    (Relation.Journal.length (Moira.Mdb.journal mdb))

(* ------------------------------------------------------------------ *)
(* E7: update-protocol robustness sweep (section 5.9).                 *)

let hesiod_outcomes report =
  (List.find
     (fun s -> s.Dcm.Manager.service = "HESIOD")
     report.Dcm.Manager.services)
    .Dcm.Manager.hosts

let bench_robust () =
  header
    "E7 (section 5.9): automatic recovery from crashes at every window\n\
     of the update protocol";
  Printf.printf "%-16s %-34s %s\n" "crash point" "first attempt"
    "after reboot+retry";
  List.iter
    (fun point ->
      let tb = Testbed.create () in
      let hes_machine, _ = Testbed.first_hesiod tb in
      let host = Testbed.host tb hes_machine in
      Netsim.Host.arm_crash host ~point;
      Sim.Engine.advance tb.Testbed.engine (7 * 3600 * 1000);
      let report = Dcm.Manager.run tb.Testbed.dcm in
      let outcome1 =
        match hesiod_outcomes report with
        | [ (_, Dcm.Manager.Updated _) ] -> "updated"
        | [ (_, Dcm.Manager.Soft_failed m) ] -> "soft failure: " ^ m
        | [ (_, Dcm.Manager.Hard_failed m) ] -> "HARD failure: " ^ m
        | _ -> "?"
      in
      if not (Netsim.Host.is_up host) then Netsim.Host.boot host;
      Sim.Engine.advance tb.Testbed.engine (7 * 3600 * 1000);
      let report = Dcm.Manager.run tb.Testbed.dcm in
      let outcome2 =
        match hesiod_outcomes report with
        | [ (_, Dcm.Manager.Updated _) ] -> "recovered"
        | [ (_, Dcm.Manager.Up_to_date) ] -> "already consistent"
        | _ -> "NOT recovered"
      in
      let trunc s n = if String.length s > n then String.sub s 0 n else s in
      Printf.printf "%-16s %-34s %s\n" point (trunc outcome1 34) outcome2)
    [ "xfer"; "before_exec"; "mid_install"; "before_restart"; "after_exec" ];
  Printf.printf
    "\nlossy network, 26 simulated hours (propagations vs soft failures):\n";
  Printf.printf "%-10s %14s %14s\n" "drop rate" "propagations" "soft fails";
  List.iter
    (fun rate ->
      let tb = Testbed.create () in
      Netsim.Net.set_drop_rate tb.Testbed.net rate;
      Testbed.run_hours tb 26;
      let reports = Dcm.Manager.reports tb.Testbed.dcm in
      let props =
        List.fold_left (fun a r -> a + Dcm.Manager.propagations r) 0 reports
      in
      let softs =
        List.fold_left
          (fun a r ->
            a
            + List.fold_left
                (fun a s ->
                  a
                  + List.length
                      (List.filter
                         (fun (_, h) ->
                           match h with
                           | Dcm.Manager.Soft_failed _ -> true
                           | _ -> false)
                         s.Dcm.Manager.hosts))
                0 r.Dcm.Manager.services)
          0 reports
      in
      Printf.printf "%-10.2f %14d %14d\n" rate props softs)
    [ 0.0; 0.05; 0.2 ];
  Printf.printf
    "(soft failures are retried on later DCM passes; every host still\n\
    \ converges -- \"completely automatic update for normal cases and\n\
    \ expected kinds of failures\")\n"

(* ------------------------------------------------------------------ *)
(* E8: the Access-then-Query double check (section 5.5).               *)

let bench_access () =
  header
    "E8 (section 5.5): access checks often run twice (Access RPC, then\n\
     the check inside Query) -- cost of the double check";
  let tb = Testbed.create () in
  let ws = tb.Testbed.built.Population.workstation_machines.(0) in
  let login = tb.Testbed.built.Population.logins.(0) in
  let c = Testbed.user_client tb ~src:ws ~login in
  let args = [ login; "/bin/sh" ] in
  let t0 = Sim.Engine.now tb.Testbed.engine in
  for _ = 1 to 100 do
    ignore
      (Moira.Mr_client.mr_query c ~name:"update_user_shell" args
         ~callback:(fun _ -> ()))
  done;
  let query_only = Sim.Engine.now tb.Testbed.engine - t0 in
  let t0 = Sim.Engine.now tb.Testbed.engine in
  for _ = 1 to 100 do
    ignore (Moira.Mr_client.mr_access c ~name:"update_user_shell" args);
    ignore
      (Moira.Mr_client.mr_query c ~name:"update_user_shell" args
         ~callback:(fun _ -> ()))
  done;
  let both = Sim.Engine.now tb.Testbed.engine - t0 in
  Printf.printf
    "simulated ms per 100 ops: query-only %d, access-then-query %d (%.2fx)\n"
    query_only both
    (float_of_int both /. float_of_int (max 1 query_only));
  let mdb = tb.Testbed.mdb in
  run_bechamel ~name:"E8"
    [
      Bechamel.Test.make ~name:"Acl.query_allowed (capacl walk)"
        (Bechamel.Staged.stage (fun () ->
             ignore
               (Moira.Acl.query_allowed mdb ~query:"update_user_shell"
                  ~login:"admin")));
    ];
  (* ablation: the access cache the paper anticipates (section 5.5),
     implemented as an extension — repeated Access requests hit the
     cache until a write flushes it *)
  let tbc = Testbed.create ~access_cache:true () in
  let wsc = tbc.Testbed.built.Population.workstation_machines.(0) in
  let loginc = tbc.Testbed.built.Population.logins.(0) in
  let cc = Testbed.user_client tbc ~src:wsc ~login:loginc in
  let argsc = [ loginc; "/bin/sh" ] in
  for _ = 1 to 1000 do
    ignore (Moira.Mr_client.mr_access cc ~name:"update_user_shell" argsc)
  done;
  let stats = Moira.Mr_server.access_cache_stats tbc.Testbed.server in
  Printf.printf
    "
access-cache ablation (1000 repeated Access requests):
    \  hits %d, misses %d -- the server-side check amortizes to a
    \  hashtable probe; the remaining cost is purely the RPC round-trip
"
    stats.Moira.Mr_server.hits stats.Moira.Mr_server.misses

(* ------------------------------------------------------------------ *)
(* Ablation: query-handle dispatch, hashtable vs linear scan.          *)

let bench_dispatch () =
  header
    "Ablation: query-handle dispatch -- registry hashtable vs linear\n\
     scan over the ~100-handle catalogue";
  let registry = Moira.Catalog.make () in
  let catalogue = Moira.Catalog.standard () in
  let linear_find name =
    List.find_opt
      (fun q -> q.Moira.Query.name = name || q.Moira.Query.short = name)
      catalogue
  in
  run_bechamel ~name:"dispatch"
    [
      Bechamel.Test.make ~name:"hashtable find (long name)"
        (Bechamel.Staged.stage (fun () ->
             ignore (Moira.Query.find registry "update_nfs_quota")));
      Bechamel.Test.make ~name:"hashtable find (short name)"
        (Bechamel.Staged.stage (fun () ->
             ignore (Moira.Query.find registry "unfq")));
      Bechamel.Test.make ~name:"linear scan (long name)"
        (Bechamel.Staged.stage (fun () ->
             ignore (linear_find "update_nfs_quota")));
    ]

(* ------------------------------------------------------------------ *)
(* Ablation: hesiod pseudo-cluster CNAME merging vs per-machine         *)
(* expansion (the cluster.db design choice DESIGN.md calls out).        *)

let bench_clusterdb () =
  header
    "Ablation: cluster.db pseudo-cluster CNAMEs (the implementation)\n\
     vs expanding every machine's cluster data in place";
  let tb = Testbed.create ~spec:Population.default () in
  let glue = tb.Testbed.glue in
  let mdb = Moira.Glue.mdb glue in
  let merged =
    match
      List.assoc_opt "cluster.db"
        (Dcm.Gen_hesiod.generator.Dcm.Gen.generate glue).Dcm.Gen.common
    with
    | Some c -> String.length c
    | None -> 0
  in
  (* the naive alternative: no CNAMEs; every machine carries UNSPECA
     copies of all its clusters' data *)
  let svc = Moira.Mdb.table mdb "svc" in
  let mcmap = Moira.Mdb.table mdb "mcmap" in
  let expanded = Buffer.create 65536 in
  Relation.Table.fold mcmap ~init:() ~f:(fun () _ row ->
      let mach =
        Option.value
          (Moira.Lookup.machine_name mdb (Relation.Value.int row.(0)))
          ~default:"?"
      in
      List.iter
        (fun (_, srow) ->
          Buffer.add_string expanded
            (Printf.sprintf "%s.cluster HS UNSPECA \"%s %s\"\n" mach
               (Relation.Value.str srow.(1))
               (Relation.Value.str srow.(2))))
        (Relation.Table.select svc
           (Relation.Pred.eq_int "clu_id" (Relation.Value.int row.(1)))));
  Printf.printf
    "merged (pseudo-cluster CNAMEs): %7d bytes\n\
     expanded per machine:           %7d bytes (%.2fx)\n\
     (the CNAME design also means one shared record to update when a\n\
    \ cluster's data changes, instead of one per member machine)\n"
    merged (Buffer.length expanded)
    (float_of_int (Buffer.length expanded) /. float_of_int (max 1 merged))

(* ------------------------------------------------------------------ *)
(* Scale sweep: section 5.1.A says the system is "designed optimally    *)
(* for 10,000 active users" — how do the core costs grow around that    *)
(* point?                                                               *)

let bench_scale () =
  header
    "Scale sweep (section 5.1.A: \"designed optimally for 10,000 active\n\
     users\") -- build, hesiod generation, dump size vs population";
  Printf.printf "%8s %12s %14s %12s %14s\n" "users" "build (s)"
    "hesiod gen (s)" "dump (MB)" "passwd.db (KB)";
  List.iter
    (fun users ->
      let spec =
        { (Population.scaled Population.default
             (float_of_int users /. 10_000.))
          with Population.users }
      in
      let t0 = Unix.gettimeofday () in
      let tb = Testbed.create ~spec () in
      let build_t = Unix.gettimeofday () -. t0 in
      let t0 = Unix.gettimeofday () in
      let out = Dcm.Gen_hesiod.generator.Dcm.Gen.generate tb.Testbed.glue in
      let gen_t = Unix.gettimeofday () -. t0 in
      let passwd =
        match List.assoc_opt "passwd.db" out.Dcm.Gen.common with
        | Some c -> String.length c
        | None -> 0
      in
      Moira.Mdb.sync_tblstats tb.Testbed.mdb;
      let dump = Relation.Backup.dump_size (Moira.Mdb.db tb.Testbed.mdb) in
      Printf.printf "%8d %12.2f %14.3f %12.2f %14d\n%!" users build_t gen_t
        (float_of_int dump /. 1_048_576.)
        (passwd / 1024))
    [ 1_000; 5_000; 10_000; 20_000 ];
  Printf.printf
    "(costs grow linearly in the population -- the design's full-extract\n\
    \ generators are exactly the thing later incremental Moira replaced)\n"

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("table1", bench_table1);
    ("dcm", bench_dcm);
    ("connect", bench_connect);
    ("glue", bench_glue);
    ("noop", bench_noop);
    ("backup", bench_backup);
    ("robust", bench_robust);
    ("access", bench_access);
    ("dispatch", bench_dispatch);
    ("clusterdb", bench_clusterdb);
    ("scale", bench_scale);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst experiments
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown experiment %S; known: %s\n" name
            (String.concat ", " (List.map fst experiments));
          exit 1)
    requested;
  Printf.printf "\n%s\nall requested experiments complete\n" line
