(* Section 3's second example: "a user [runs] an application to add
   themselves to a public mailing list.  Again, the user can run this
   application on any workstation.  Sometime later, the mailing lists
   file on the central mail hub will be updated to show this change."

     dune exec examples/mailing_list.exe                                *)

open Workload

let check what = function
  | 0 -> ()
  | code -> failwith (what ^ ": " ^ Comerr.Com_err.error_message code)

let aliases tb =
  let hub = Testbed.host tb tb.Testbed.built.Population.mail_hub in
  Option.value
    (Netsim.Vfs.read (Netsim.Host.fs hub) ~path:"/usr/lib/aliases")
    ~default:"(no aliases file yet)"

let grep needle hay =
  String.split_on_char '\n' hay
  |> List.filter (fun l ->
         String.length l >= String.length needle
         && String.sub l 0 (String.length needle) = needle)

let () =
  let tb = Testbed.create () in
  Testbed.run_hours tb 25; (* initial propagation of everything *)
  let ws = tb.Testbed.built.Population.workstation_machines.(2) in

  (* An administrator creates a public mailing list. *)
  let admin = Testbed.admin_client tb ~src:ws in
  check "add_list"
    (Moira.Mr_client.mr_query admin ~name:"add_list"
       [ "video-users"; "1"; "1"; "0"; "1"; "0"; "-1"; "USER";
         tb.Testbed.built.Population.admin; "Video Users" ]
       ~callback:(fun _ -> ()));
  Printf.printf "created public mailing list 'video-users'\n";

  (* An ordinary user adds herself from her own workstation.  The list
     is public, so the ACL allows self-addition and nothing else. *)
  let login = tb.Testbed.built.Population.logins.(9) in
  let user = Testbed.user_client tb ~src:ws ~login in
  check "self add"
    (Moira.Mr_client.mr_query user ~name:"add_member_to_list"
       [ "video-users"; "USER"; login ] ~callback:(fun _ -> ()));
  Printf.printf "%s added herself to video-users\n" login;

  (* She cannot add somebody else: *)
  let other = tb.Testbed.built.Population.logins.(10) in
  (match
     Moira.Mr_client.mr_query user ~name:"add_member_to_list"
       [ "video-users"; "USER"; other ] ~callback:(fun _ -> ())
   with
  | code when code = Moira.Mr_err.perm ->
      Printf.printf "adding %s was refused: %s\n" other
        (Comerr.Com_err.error_message code)
  | _ -> failwith "ACL failed to protect the list");

  (* The hub still has the old file... *)
  Printf.printf "\nmail hub, immediately:      %s\n"
    (match grep "video-users:" (aliases tb) with
    | [] -> "(no video-users line yet)"
    | l :: _ -> l);

  (* ...until the MAIL propagation interval (24 h) elapses. *)
  Testbed.run_hours tb 25;
  Printf.printf "mail hub, a day later:      %s\n"
    (match grep "video-users:" (aliases tb) with
    | [] -> failwith "list never propagated"
    | l :: _ -> l);

  (* The membership is also queryable through Moira itself. *)
  (match
     Moira.Mr_client.mr_query_list user ~name:"get_members_of_list"
       [ "video-users" ]
   with
  | Ok members ->
      Printf.printf "\nlist members via get_members_of_list:\n";
      List.iter
        (fun m -> Printf.printf "  %s %s\n" (List.nth m 0) (List.nth m 1))
        members
  | Error code -> check "get_members_of_list" code);
  Printf.printf "\nmailing list example complete\n"
