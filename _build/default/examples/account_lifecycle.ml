(* The paper's central story (section 5.10 + 5.8.2): a student walks up
   to a workstation, registers with userreg, and — after the propagation
   lag the paper describes ("the user will not benefit from this
   allocation for a maximum of six hours") — exists everywhere: hesiod,
   the mail hub, her home fileserver.

     dune exec examples/account_lifecycle.exe                           *)

open Workload

let () =
  let tb = Testbed.create () in
  let ws = tb.Testbed.built.Population.workstation_machines.(0) in
  let moira = tb.Testbed.built.Population.moira_machine in

  (* Athena receives the registrar's tape before the term. *)
  let student =
    {
      Userreg.first = "Edsger";
      middle = "W";
      last = "Dijkstra";
      id_number = "930-11-0168";
      class_year = "G";
    }
  in
  (match Userreg.load_registrar_tape tb.Testbed.glue [ student ] with
  | Ok n -> Printf.printf "registrar tape loaded: %d new student(s)\n" n
  | Error c -> failwith (Comerr.Com_err.error_message c));

  (* The student sits down at a workstation and runs userreg. *)
  (match
     Userreg.verify_user tb.Testbed.net ~src:ws ~server:moira
       ~first:student.Userreg.first ~last:student.Userreg.last
       ~id_number:student.Userreg.id_number
   with
  | Ok Userreg.Reg_ok -> Printf.printf "verify_user: OK, registerable\n"
  | Ok _ | Error _ -> failwith "verify failed");
  (match
     Userreg.register tb.Testbed.net ~src:ws ~server:moira
       ~first:student.Userreg.first ~middle:student.Userreg.middle
       ~last:student.Userreg.last ~id_number:student.Userreg.id_number
       ~login:"ewd" ~password:"gotoharmful"
   with
  | Ok () -> Printf.printf "registered login 'ewd' (grab_login + set_password)\n"
  | Error e -> failwith (Userreg.reg_error_to_string e));

  (* She can authenticate to Moira right away... *)
  let c = Moira.Mr_client.create tb.Testbed.net ~src:ws in
  ignore (Moira.Mr_client.mr_connect c ~dst:moira);
  (match
     Moira.Mr_client.mr_auth c ~kdc:tb.Testbed.kdc ~principal:"ewd"
       ~password:"gotoharmful" ~clientname:"lifecycle"
   with
  | 0 -> Printf.printf "kerberos authentication as ewd: OK\n"
  | c -> failwith (Comerr.Com_err.error_message c));

  (* ...but hesiod does not know her yet: the files have not been
     regenerated.  This is the paper's intentional propagation lag. *)
  let hes_machine, hes = Testbed.first_hesiod tb in
  (match Hesiod.Hes_server.resolve_local hes ~name:"ewd" ~ty:"passwd" with
  | [] -> Printf.printf "hesiod: not yet visible (expected; max 6h lag)\n"
  | _ -> Printf.printf "hesiod: already visible?!\n");

  (* Let half a day of simulated time pass: the DCM runs on schedule. *)
  Testbed.run_hours tb 13;
  Printf.printf "\n13 simulated hours later:\n";
  (match
     Hesiod.Hes_server.resolve tb.Testbed.net ~src:ws ~server:hes_machine
       ~name:"ewd" ~ty:"passwd"
   with
  | Ok [ line ] -> Printf.printf "  hesiod passwd: %s\n" line
  | _ -> failwith "hesiod lookup failed");
  (match Hesiod.Hes_server.resolve_local hes ~name:"ewd" ~ty:"pobox" with
  | [ line ] -> Printf.printf "  hesiod pobox:  %s\n" line
  | _ -> failwith "no pobox");
  (match Hesiod.Hes_server.resolve_local hes ~name:"ewd" ~ty:"filsys" with
  | [ line ] -> Printf.printf "  hesiod filsys: %s\n" line
  | _ -> failwith "no filsys");

  (* Her home locker was created on the fileserver by the nfs.sh install
     script reading the .dirs file. *)
  Array.iter
    (fun m ->
      let fs = Netsim.Host.fs (Testbed.host tb m) in
      List.iter
        (fun path ->
          if Filename.basename (Filename.dirname path) = "ewd" then
            Printf.printf "  locker on %s: %s -> %s\n" m path
              (Option.value (Netsim.Vfs.read fs ~path) ~default:""))
        (Netsim.Vfs.list fs))
    tb.Testbed.built.Population.nfs_machines;

  (* And the mail hub forwards her mail to her post office. *)
  let hub = Testbed.host tb tb.Testbed.built.Population.mail_hub in
  (match
     Netsim.Vfs.read (Netsim.Host.fs hub) ~path:"/usr/lib/aliases"
   with
  | Some aliases ->
      String.split_on_char '\n' aliases
      |> List.iter (fun l ->
             if String.length l > 4 && String.sub l 0 4 = "ewd:" then
               Printf.printf "  mail hub alias: %s\n" l)
  | None -> failwith "no aliases on hub");
  Printf.printf "\naccount lifecycle complete: ewd exists everywhere\n"
