(* Campus mail, end to end: the hub routes with the Moira-generated
   aliases file, messages land in poboxes on the post offices, and the
   recipient's client finds the box through hesiod — the complete Mail
   story of paper section 5.8.2.

     dune exec examples/send_mail.exe                                   *)

open Workload

let () =
  let tb = Testbed.create () in
  Testbed.run_hours tb 25; (* aliases and pobox.db propagated *)
  let ws = tb.Testbed.built.Population.workstation_machines.(0) in
  let glue = tb.Testbed.glue in

  (* a mailing list with two members and one external address *)
  let u1 = tb.Testbed.built.Population.logins.(1) in
  let u2 = tb.Testbed.built.Population.logins.(2) in
  ignore
    (Moira.Glue.query glue ~name:"add_list"
       [ "video-users"; "1"; "1"; "0"; "1"; "0"; "-1"; "NONE"; "NONE";
         "Video Users" ]);
  List.iter
    (fun m ->
      ignore
        (Moira.Glue.query glue ~name:"add_member_to_list"
           [ "video-users"; "USER"; m ]))
    [ u1; u2 ];
  ignore
    (Moira.Glue.query glue ~name:"add_member_to_list"
       [ "video-users"; "STRING"; "rubin@media-lab.mit.edu" ]);
  Printf.printf "created mailing list video-users = {%s, %s, rubin@...}\n" u1
    u2;

  (* the DCM carries the new list to the hub on its next MAIL pass *)
  Testbed.run_hours tb 25;

  (match
     Testbed.send_mail tb ~src:ws ~sender:u1 ~rcpt:"video-users"
       ~body:"screening tonight in 26-100"
   with
  | Ok n -> Printf.printf "sent to video-users: %d copies delivered\n" n
  | Error f -> failwith (Netsim.Net.failure_to_string f));

  (* each member's inc finds the pobox via hesiod and drains it *)
  List.iter
    (fun u ->
      match Testbed.read_mail tb ~ws ~login:u with
      | Ok msgs ->
          List.iter
            (fun m ->
              Printf.printf "  %s got: %S (from %s)\n" u
                m.Pop.Pop_server.body m.Pop.Pop_server.sender)
            msgs
      | Error f -> failwith (Netsim.Net.failure_to_string f))
    [ u1; u2 ];

  (* the external copy left campus *)
  List.iter
    (function
      | Pop.Mailhub.External addr ->
          Printf.printf "  external copy to %s\n" addr
      | _ -> ())
    (Pop.Mailhub.log tb.Testbed.mailhub);
  Printf.printf "\nmail example complete\n"
