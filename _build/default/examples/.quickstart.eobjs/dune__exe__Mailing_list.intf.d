examples/mailing_list.mli:
