examples/quota_admin.ml: Array Comerr List Moira Netsim Option Population Printf Testbed Workload
