examples/quickstart.ml: Array Comerr Hesiod List Moira Population Printf Testbed Workload
