examples/account_lifecycle.ml: Array Comerr Filename Hesiod List Moira Netsim Option Population Printf String Testbed Userreg Workload
