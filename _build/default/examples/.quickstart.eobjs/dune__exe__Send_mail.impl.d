examples/send_mail.ml: Array List Moira Netsim Pop Population Printf Testbed Workload
