examples/quickstart.mli:
