examples/account_lifecycle.mli:
