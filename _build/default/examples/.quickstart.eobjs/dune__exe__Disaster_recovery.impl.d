examples/disaster_recovery.ml: Array Comerr Dcm List Moira Netsim Population Printf Relation Sim String Testbed Workload
