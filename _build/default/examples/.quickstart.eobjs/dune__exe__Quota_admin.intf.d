examples/quota_admin.mli:
