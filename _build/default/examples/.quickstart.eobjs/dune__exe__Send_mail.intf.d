examples/send_mail.mli:
