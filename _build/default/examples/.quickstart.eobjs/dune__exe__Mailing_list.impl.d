examples/mailing_list.ml: Array Comerr List Moira Netsim Option Population Printf String Testbed Workload
