(* Section 3's first example: "the user accounts administrator [runs] an
   application on her workstation which will change the disk quota
   assigned to a user.  She doesn't need to log in to any other machine
   to do this, and the change will automatically take place on the
   proper server a short time later."

     dune exec examples/quota_admin.exe                                 *)

open Workload

let check what = function
  | 0 -> ()
  | code -> failwith (what ^ ": " ^ Comerr.Com_err.error_message code)

let () =
  let tb = Testbed.create () in
  Testbed.run_hours tb 13; (* initial NFS propagation *)
  let ws = tb.Testbed.built.Population.workstation_machines.(0) in
  let login = tb.Testbed.built.Population.logins.(4) in

  (* Where does this user live?  The admin asks Moira, not the servers. *)
  let admin = Testbed.admin_client tb ~src:ws in
  let uid, home =
    match
      ( Moira.Mr_client.mr_query_list admin ~name:"get_user_by_login" [ login ],
        Moira.Mr_client.mr_query_list admin ~name:"get_filesys_by_label"
          [ login ] )
    with
    | Ok [ urow ], Ok (fsrow :: _) -> (List.nth urow 1, List.nth fsrow 2)
    | _ -> failwith "lookups failed"
  in
  Printf.printf "%s (uid %s) has her home filesystem on %s\n" login uid home;

  let current =
    match
      Moira.Mr_client.mr_query_list admin ~name:"get_nfs_quota"
        [ login; login ]
    with
    | Ok (row :: _) -> List.nth row 2
    | _ -> failwith "no quota"
  in
  Printf.printf "current quota: %s units\n" current;

  (* One RPC from her workstation; no rlogin to the fileserver. *)
  check "update_nfs_quota"
    (Moira.Mr_client.mr_query admin ~name:"update_nfs_quota"
       [ login; login; "750" ] ~callback:(fun _ -> ()));
  Printf.printf "quota set to 750 in the Moira database\n";

  (* The fileserver still enforces the old value... *)
  let server_quota () =
    let fs = Netsim.Host.fs (Testbed.host tb home) in
    Netsim.Vfs.read fs ~path:("/var/moira/quotas/" ^ uid)
  in
  Printf.printf "on %s right now: %s\n" home
    (Option.value (server_quota ()) ~default:"(none)");

  (* ...until the DCM's next NFS pass (12 hour interval). *)
  Testbed.run_hours tb 13;
  (match server_quota () with
  | Some "750" -> Printf.printf "on %s 13 hours later: 750  -- applied!\n" home
  | other ->
      failwith
        ("quota not applied: " ^ Option.value other ~default:"(none)"));

  (* The serverhosts bookkeeping shows the successful update. *)
  (match
     Moira.Mr_client.mr_query_list admin ~name:"get_server_host_info"
       [ "NFS"; home ]
   with
  | Ok [ row ] ->
      Printf.printf "DCM record: success=%s lastsuccess=%s\n"
        (List.nth row 4) (List.nth row 9)
  | _ -> failwith "no serverhost row");
  Printf.printf "\nquota administration example complete\n"
