(* Quickstart: boot a small simulated Athena, connect with the
   application library, run a few queries, make a change, and watch the
   DCM propagate it.

     dune exec examples/quickstart.exe                                  *)

open Workload

let check what = function
  | 0 -> ()
  | code -> failwith (what ^ ": " ^ Comerr.Com_err.error_message code)

let () =
  (* A complete simulated campus: database machine with the Moira server
     and DCM, one hesiod server, NFS servers, a mail hub, zephyr. *)
  let tb = Testbed.create () in
  let ws = tb.Testbed.built.Population.workstation_machines.(0) in
  let moira = tb.Testbed.built.Population.moira_machine in
  Printf.printf "simulated Athena is up; talking to %s from %s\n\n" moira ws;

  (* The application library: mr_connect, mr_auth, mr_query. *)
  let c = Moira.Mr_client.create tb.Testbed.net ~src:ws in
  check "mr_connect" (Moira.Mr_client.mr_connect c ~dst:moira);
  check "mr_noop" (Moira.Mr_client.mr_noop c);

  (* Unauthenticated reads that are open to everybody: *)
  (match Moira.Mr_client.mr_query_list c ~name:"get_machine" [ "SUOMI*" ] with
  | Ok rows ->
      List.iter
        (fun row -> Printf.printf "machine: %s (%s)\n" (List.nth row 0) (List.nth row 1))
        rows
  | Error code -> check "get_machine" code);

  (* Authenticate with Kerberos to do more. *)
  check "mr_auth"
    (Moira.Mr_client.mr_auth c ~kdc:tb.Testbed.kdc
       ~principal:tb.Testbed.built.Population.admin
       ~password:tb.Testbed.built.Population.admin_password
       ~clientname:"quickstart");

  (* A query with a per-tuple callback, as in the C library. *)
  Printf.printf "\nfirst few active accounts:\n";
  let shown = ref 0 in
  check "get_all_active_logins"
    (Moira.Mr_client.mr_query c ~name:"get_all_active_logins" []
       ~callback:(fun tuple ->
         if !shown < 5 then begin
           incr shown;
           Printf.printf "  %-10s uid %s shell %s\n" (List.nth tuple 0)
             (List.nth tuple 1) (List.nth tuple 2)
         end));

  (* Make an administrative change... *)
  let login = tb.Testbed.built.Population.logins.(0) in
  check "update_user_shell"
    (Moira.Mr_client.mr_query c ~name:"update_user_shell"
       [ login; "/bin/quickstart" ] ~callback:(fun _ -> ()));
  Printf.printf "\nchanged %s's shell in the Moira database\n" login;

  (* ...and let the simulated hours pass: the DCM regenerates hesiod's
     files and pushes them; the hesiod server answers with new data. *)
  Testbed.run_hours tb 7;
  let hes_machine, _ = Testbed.first_hesiod tb in
  (match
     Hesiod.Hes_server.resolve tb.Testbed.net ~src:ws ~server:hes_machine
       ~name:login ~ty:"passwd"
   with
  | Ok [ line ] -> Printf.printf "hesiod now says: %s\n" line
  | _ -> failwith "hesiod lookup failed");

  check "mr_disconnect" (Moira.Mr_client.mr_disconnect c);
  Printf.printf "\nquickstart complete\n"
