(* Disaster recovery (sections 5.2.2 and 5.9): the nightly ASCII dump,
   a catastrophic database loss, mrrestore, and journal replay to win
   back the day's transactions; then a fileserver crash mid-update and
   the automatic retry.

     dune exec examples/disaster_recovery.exe                           *)

open Workload

let () =
  let tb = Testbed.create () in
  Testbed.run_hours tb 1;
  let mdb = tb.Testbed.mdb in
  let login = tb.Testbed.built.Population.logins.(0) in

  (* --- nightly.sh: dump every relation to colon-separated ASCII --- *)
  Moira.Mdb.sync_tblstats mdb;
  let dump = Relation.Backup.dump (Moira.Mdb.db mdb) in
  let dump_time = Moira.Mdb.now mdb in
  let bytes =
    List.fold_left (fun a (_, s) -> a + String.length s) 0 dump
  in
  Printf.printf "mrbackup: dumped %d relations, %d bytes of ASCII\n"
    (List.length dump) bytes;

  (* --- the day's business continues, journalled --- *)
  Testbed.run_minutes tb 30;
  (match
     Moira.Glue.query tb.Testbed.glue ~name:"update_user_shell"
       [ login; "/bin/precious" ]
   with
  | Ok _ -> Printf.printf "post-dump change: %s's shell -> /bin/precious\n" login
  | Error c -> failwith (Comerr.Com_err.error_message c));

  (* --- catastrophe: the binary database is corrupt; rebuild --- *)
  Printf.printf "\n*** catastrophic corruption: recreating from the dump ***\n";
  let clock = Sim.Engine.clock_sec tb.Testbed.engine in
  let fresh = Moira.Mdb.create ~clock in
  Relation.Backup.restore (Moira.Mdb.db fresh) dump;
  let glue2 =
    Moira.Glue.create ~mdb:fresh ~registry:(Moira.Catalog.make ()) ()
  in
  let shell () =
    match Moira.Glue.query glue2 ~name:"get_user_by_login" [ login ] with
    | Ok [ row ] -> List.nth row 2
    | _ -> failwith "user lost in restore!"
  in
  Printf.printf "restored %d users; %s's shell is %s (stale)\n"
    (Relation.Table.cardinal (Moira.Mdb.table fresh "users"))
    login (shell ());

  (* --- replay the journal from the dump time --- *)
  let replayed =
    Relation.Journal.replay (Moira.Mdb.journal mdb) ~since:dump_time
      ~f:(fun e ->
        ignore
          (Moira.Glue.query glue2 ~name:e.Relation.Journal.query
             e.Relation.Journal.args))
  in
  Printf.printf "journal replay: %d entries; shell is now %s\n" replayed
    (shell ());
  assert (shell () = "/bin/precious");

  (* --- a server crash in the middle of an update --- *)
  Printf.printf "\n*** fileserver crashes mid-install during a DCM push ***\n";
  let victim = tb.Testbed.built.Population.nfs_machines.(0) in
  let host = Testbed.host tb victim in
  Netsim.Host.arm_crash host ~point:"mid_install";
  (* force the next pass to touch the host *)
  ignore
    (Moira.Glue.query tb.Testbed.glue ~name:"set_server_host_override"
       [ "NFS"; victim ]);
  let report = Dcm.Manager.run tb.Testbed.dcm in
  List.iter
    (fun s ->
      if s.Dcm.Manager.service = "NFS" then
        List.iter
          (fun (m, r) ->
            if m = victim then
              match r with
              | Dcm.Manager.Soft_failed msg ->
                  Printf.printf "DCM: soft failure on %s (%s); will retry\n" m
                    msg
              | _ -> Printf.printf "DCM: unexpected result on %s\n" m)
          s.Dcm.Manager.hosts)
    report.Dcm.Manager.services;

  (* the machine reboots; the DCM's next pass retries automatically *)
  Netsim.Host.boot host;
  Testbed.run_hours tb 1;
  (match
     Moira.Glue.query tb.Testbed.glue ~name:"get_server_host_info"
       [ "NFS"; victim ]
   with
  | Ok [ row ] ->
      Printf.printf "after reboot + retry: success=%s hosterror=%s\n"
        (List.nth row 4) (List.nth row 6)
  | _ -> failwith "no serverhost row");
  Printf.printf "\ndisaster recovery example complete\n"
