lib/netsim/net.mli: Host Sim
