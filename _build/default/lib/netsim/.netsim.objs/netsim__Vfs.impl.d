lib/netsim/vfs.ml: List Map String
