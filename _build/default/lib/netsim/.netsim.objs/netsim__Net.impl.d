lib/netsim/net.ml: Hashtbl Host List Printf Sim String
