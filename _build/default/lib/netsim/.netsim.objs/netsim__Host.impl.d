lib/netsim/host.ml: Hashtbl List Vfs
