lib/netsim/host.mli: Vfs
