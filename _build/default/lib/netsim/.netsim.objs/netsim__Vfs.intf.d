lib/netsim/vfs.mli:
