(** The simulated Athena network.

    Synchronous request/reply over virtual links: a call charges latency
    to the engine clock (base round-trip plus a per-kilobyte transfer
    cost) and can fail the ways the paper's update protocol must survive —
    the peer host is down, the service is absent, the link times out, or
    the peer crashes mid-request.  Link faults are injected
    deterministically from the engine RNG. *)

type t

(** Why a call failed. *)
type failure =
  | Host_down  (** Peer exists but is down (connection times out). *)
  | No_host  (** No such hostname (connection refused). *)
  | No_service  (** Host up, nothing listening on that service. *)
  | Timeout  (** Link-level loss: the request or reply vanished. *)
  | Remote_crash of string  (** Peer crashed mid-handler, at this point. *)

val failure_to_string : failure -> string
(** Human-readable failure description. *)

type stats = {
  mutable calls : int;  (** Total calls attempted. *)
  mutable bytes : int;  (** Total payload bytes moved (both directions). *)
  mutable failures : int;  (** Calls that returned an error. *)
}

val create :
  ?base_rtt_ms:int -> ?per_kb_ms:int -> ?timeout_ms:int -> Sim.Engine.t -> t
(** A network on the given engine.  Latency model: each successful call
    advances the clock by [base_rtt_ms] (default 4) plus [per_kb_ms]
    (default 1) per KiB of payload moved.  A lost message costs the full
    [timeout_ms] (default 30_000) before the caller sees {!Timeout} —
    the paper's "reasonable amount of time" guard. *)

val engine : t -> Sim.Engine.t
(** The engine this network runs on. *)

val add_host : t -> string -> Host.t
(** Create and register a host.
    @raise Invalid_argument on a duplicate name. *)

val host : t -> string -> Host.t
(** Look up a host.  @raise Not_found if absent. *)

val host_opt : t -> string -> Host.t option
(** Like {!host} but total. *)

val hosts : t -> Host.t list
(** All hosts, in registration order. *)

val call :
  t -> src:string -> dst:string -> service:string -> string ->
  (string, failure) result
(** One synchronous request/reply.  Charges latency, applies fault
    injection, dispatches to the destination host's service handler. *)

val set_drop_rate : t -> float -> unit
(** Probability that any single call is lost to the network (default 0). *)

val stats : t -> stats
(** Live traffic counters. *)

val reset_stats : t -> unit
(** Zero the counters. *)
