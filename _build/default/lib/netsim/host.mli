(** A simulated host: a name, an up/down state, a virtual filesystem, a
    table of named services (RPC handlers), and scripted crash points for
    fault-injection tests. *)

type t

exception Crashed of string
(** Raised out of a service handler when a scripted crash point fires;
    the host is already marked down and its unflushed writes discarded. *)

type handler = src:string -> string -> string
(** A service handler: peer hostname and request payload to reply payload. *)

val create : string -> t
(** A new host, initially up, with an empty filesystem. *)

val name : t -> string
(** The hostname. *)

val fs : t -> Vfs.t
(** The host's filesystem. *)

val is_up : t -> bool
(** Whether the host is currently up. *)

val register : t -> service:string -> handler -> unit
(** Install (or replace) the handler for a named service. *)

val unregister : t -> service:string -> unit
(** Remove a service. *)

val lookup : t -> service:string -> handler option
(** Find a service handler. *)

val crash : t -> unit
(** Take the host down now: unflushed filesystem state is lost. *)

val boot : t -> unit
(** Bring the host back up and run its boot hooks (e.g. servers reloading
    their data files, per section 5.9 trouble recovery). *)

val on_boot : t -> (t -> unit) -> unit
(** Add a hook run on every {!boot}. *)

val arm_crash : t -> point:string -> unit
(** Arm the named crash point: the next {!maybe_crash} naming it crashes
    the host.  Each arming fires once. *)

val maybe_crash : t -> point:string -> unit
(** If [point] is armed, disarm it, {!crash} the host and raise
    {!Crashed}.  Server code sprinkles these at the crash windows the
    paper analyses (between install and confirm, etc.). *)
