type failure =
  | Host_down
  | No_host
  | No_service
  | Timeout
  | Remote_crash of string

let failure_to_string = function
  | Host_down -> "host is down"
  | No_host -> "no such host"
  | No_service -> "connection refused (no such service)"
  | Timeout -> "connection timed out"
  | Remote_crash p -> Printf.sprintf "peer crashed (%s)" p

type stats = {
  mutable calls : int;
  mutable bytes : int;
  mutable failures : int;
}

type t = {
  engine : Sim.Engine.t;
  rng : Sim.Rng.t;
  by_name : (string, Host.t) Hashtbl.t;
  mutable order : string list;
  base_rtt_ms : int;
  per_kb_ms : int;
  timeout_ms : int;
  mutable drop_rate : float;
  stats : stats;
}

let create ?(base_rtt_ms = 4) ?(per_kb_ms = 1) ?(timeout_ms = 30_000) engine =
  {
    engine;
    rng = Sim.Rng.split (Sim.Engine.rng engine);
    by_name = Hashtbl.create 31;
    order = [];
    base_rtt_ms;
    per_kb_ms;
    timeout_ms;
    drop_rate = 0.0;
    stats = { calls = 0; bytes = 0; failures = 0 };
  }

let engine t = t.engine

let add_host t name =
  if Hashtbl.mem t.by_name name then
    invalid_arg (Printf.sprintf "Net.add_host: duplicate host %S" name);
  let h = Host.create name in
  Hashtbl.replace t.by_name name h;
  t.order <- name :: t.order;
  h

let host t name =
  match Hashtbl.find_opt t.by_name name with
  | Some h -> h
  | None -> raise Not_found

let host_opt t name = Hashtbl.find_opt t.by_name name
let hosts t = List.rev_map (fun n -> host t n) t.order

let charge t bytes =
  let cost = t.base_rtt_ms + (t.per_kb_ms * (bytes / 1024)) in
  Sim.Engine.advance t.engine cost

let fail t failure =
  t.stats.failures <- t.stats.failures + 1;
  Error failure

let call t ~src ~dst ~service payload =
  t.stats.calls <- t.stats.calls + 1;
  t.stats.bytes <- t.stats.bytes + String.length payload;
  match Hashtbl.find_opt t.by_name dst with
  | None ->
      charge t 0;
      fail t No_host
  | Some h when not (Host.is_up h) ->
      (* A down host looks like a connection that never completes. *)
      Sim.Engine.advance t.engine t.timeout_ms;
      fail t Host_down
  | Some h ->
      if t.drop_rate > 0.0 && Sim.Rng.chance t.rng t.drop_rate then begin
        Sim.Engine.advance t.engine t.timeout_ms;
        fail t Timeout
      end
      else begin
        match Host.lookup h ~service with
        | None ->
            charge t 0;
            fail t No_service
        | Some handler -> (
            charge t (String.length payload);
            match handler ~src payload with
            | reply ->
                t.stats.bytes <- t.stats.bytes + String.length reply;
                charge t (String.length reply);
                Ok reply
            | exception Host.Crashed point ->
                Sim.Engine.advance t.engine t.timeout_ms;
                fail t (Remote_crash point))
      end

let set_drop_rate t rate = t.drop_rate <- rate
let stats t = t.stats

let reset_stats t =
  t.stats.calls <- 0;
  t.stats.bytes <- 0;
  t.stats.failures <- 0
