exception Crashed of string

type handler = src:string -> string -> string

type t = {
  name : string;
  mutable up : bool;
  fs : Vfs.t;
  services : (string, handler) Hashtbl.t;
  armed : (string, unit) Hashtbl.t;
  mutable boot_hooks : (t -> unit) list;
}

let create name =
  {
    name;
    up = true;
    fs = Vfs.create ();
    services = Hashtbl.create 7;
    armed = Hashtbl.create 7;
    boot_hooks = [];
  }

let name t = t.name
let fs t = t.fs
let is_up t = t.up
let register t ~service h = Hashtbl.replace t.services service h
let unregister t ~service = Hashtbl.remove t.services service
let lookup t ~service = Hashtbl.find_opt t.services service

let crash t =
  t.up <- false;
  Vfs.crash t.fs

let boot t =
  t.up <- true;
  List.iter (fun hook -> hook t) (List.rev t.boot_hooks)

let on_boot t hook = t.boot_hooks <- hook :: t.boot_hooks

let arm_crash t ~point = Hashtbl.replace t.armed point ()

let maybe_crash t ~point =
  if Hashtbl.mem t.armed point then begin
    Hashtbl.remove t.armed point;
    crash t;
    raise (Crashed point)
  end
