(** New user registration (paper section 5.10).

    Before each term the registrar's list of students is loaded into the
    users relation: no login, a unique users id, and the MIT ID stored
    only as a crypt() hash salted with the student's initials.  A
    registration server on the Moira machine then answers three UDP
    requests — verify_user, grab_login, set_password — authenticated by
    an encrypted-ID authenticator, so a student can create their own
    account from any workstation with no staff intervention. *)

(** {1 Registrar tape} *)

type tape_entry = {
  first : string;
  middle : string;
  last : string;
  id_number : string;  (** e.g. "123-45-6789"; hyphens ignored. *)
  class_year : string;  (** An alias-validated class, e.g. "1991". *)
}

val load_registrar_tape :
  Moira.Glue.t -> tape_entry list -> (int, int) result
(** Add every student not already present (matched by hashed ID) as a
    status-0, login-less user via [add_user].  Returns how many were
    added, or the first query error. *)

(** {1 Authenticators} *)

val make_authenticator :
  first:string -> last:string -> id_number:string -> extra:string list ->
  string
(** The client-side authenticator: the ID (hyphens stripped), its crypt
    hash, and any extra arguments (login or password), all encrypted
    under the hash. *)

(** {1 The registration server} *)

type server

type verify_status =
  | Reg_ok  (** Found and registerable. *)
  | Already_registered
  | Not_found

val start :
  glue:Moira.Glue.t -> kdc:Krb.Kdc.t -> Netsim.Host.t -> server
(** Start the registration server on the (database) host: registers the
    network service ["userreg"]. *)

(** {1 The userreg client program} *)

type reg_error =
  | Verify_failed of verify_status
  | Login_taken
  | Bad_authenticator
  | Server_unreachable
  | Query_failed of int

val verify_user :
  Netsim.Net.t -> src:string -> server:string ->
  first:string -> last:string -> id_number:string ->
  (verify_status, reg_error) result
(** The verify_user request alone. *)

val register :
  ?kdc:Krb.Kdc.t ->
  Netsim.Net.t -> src:string -> server:string ->
  first:string -> middle:string -> last:string -> id_number:string ->
  login:string -> password:string ->
  (unit, reg_error) result
(** The full userreg flow: verify_user, then grab_login (which creates
    the account's pobox, group, home filesystem and quota, and reserves
    the name with Kerberos), then set_password.  [middle] is displayed
    but not used for authentication, as in the paper.

    When [kdc] is given, the paper's two-step name check runs first:
    "it tries to get initial tickets for the user name from Kerberos; if
    this fails (indicating that the username is free and may be
    registered), it then sends a grab_login request." *)

val reg_error_to_string : reg_error -> string
(** Render an error for diagnostics. *)
