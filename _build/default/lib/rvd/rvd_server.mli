(** The Remote Virtual Disk substrate — the paper's second filesystem
    type (filsys entries like ["RVD ade helen r /mnt/ade"]).

    An RVD server exports named *packs*.  Its pack database lives in a
    file ([/etc/rvddb], one ["pack mode"] line each) that is loaded when
    the machine boots — the paper's §5.9 example of reboot-repairs-state:
    "the RVD database is sent to the server upon booting, so if the
    machine crashes between installation of the file and delivery of the
    information to the server, no harm is done."

    Clients spin a pack up over the network service ["rvd"]. *)

type t

val db_path : string
(** Where the pack database lives: ["/etc/rvddb"]. *)

val format_db : (string * string) list -> string
(** Render a pack database from [(pack, mode)] pairs. *)

val start : Netsim.Host.t -> t
(** Run an RVD server on the host: load {!db_path} now, reload on every
    boot, and serve spin-up requests. *)

val reload : t -> unit
(** Re-read the pack database (what the boot hook does). *)

val packs : t -> (string * string) list
(** The currently exported [(pack, mode)] pairs, sorted. *)

type spinup_error =
  | No_such_pack
  | Access_denied  (** Write spin-up of a read-only pack. *)
  | Unreachable of Netsim.Net.failure

val spinup_local : t -> pack:string -> mode:string -> (unit, spinup_error) result
(** In-process spin-up check. *)

val spunup : t -> (string * string) list
(** Packs currently spun up, as [(pack, mode)], oldest first. *)

(** {1 Client side} *)

val spinup :
  Netsim.Net.t -> src:string -> server:string -> pack:string ->
  mode:string -> (unit, spinup_error) result
(** Ask the RVD server on [server] to spin [pack] up with [mode]
    ([r] or [w]). *)
