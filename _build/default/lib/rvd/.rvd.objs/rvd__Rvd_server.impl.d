lib/rvd/rvd_server.ml: List Netsim Printf String
