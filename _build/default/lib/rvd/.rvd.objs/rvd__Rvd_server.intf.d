lib/rvd/rvd_server.mli: Netsim
