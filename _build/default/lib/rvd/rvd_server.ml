type t = {
  host : Netsim.Host.t;
  mutable packs : (string * string) list;
  mutable spun : (string * string) list; (* newest first *)
}

let db_path = "/etc/rvddb"

let format_db pairs =
  String.concat ""
    (List.map (fun (pack, mode) -> Printf.sprintf "%s %s\n" pack mode) pairs)

let parse_db contents =
  String.split_on_char '\n' contents
  |> List.filter_map (fun line ->
         match
           String.split_on_char ' ' (String.trim line)
           |> List.filter (fun s -> s <> "")
         with
         | [ pack; mode ] -> Some (pack, mode)
         | _ -> None)

let reload t =
  t.packs <-
    (match Netsim.Vfs.read (Netsim.Host.fs t.host) ~path:db_path with
    | Some contents -> parse_db contents
    | None -> [])

let packs t = List.sort compare t.packs

type spinup_error =
  | No_such_pack
  | Access_denied
  | Unreachable of Netsim.Net.failure

let spinup_local t ~pack ~mode =
  match List.assoc_opt pack t.packs with
  | None -> Error No_such_pack
  | Some exported_mode ->
      if mode = "w" && exported_mode <> "w" then Error Access_denied
      else begin
        t.spun <- (pack, mode) :: t.spun;
        Ok ()
      end

let spunup t = List.rev t.spun

let start host =
  let t = { host; packs = []; spun = [] } in
  reload t;
  Netsim.Host.register host ~service:"rvd" (fun ~src:_ payload ->
      match
        String.split_on_char ' ' payload |> List.filter (fun s -> s <> "")
      with
      | [ "SPINUP"; pack; mode ] -> (
          match spinup_local t ~pack ~mode with
          | Ok () -> "OK"
          | Error No_such_pack -> "NOPACK"
          | Error Access_denied -> "DENIED"
          | Error (Unreachable _) -> "ERR")
      | _ -> "BADREQ");
  Netsim.Host.on_boot host (fun _ ->
      (* spun-up state is volatile; the pack db is re-read from disk *)
      t.spun <- [];
      reload t);
  t

let spinup net ~src ~server ~pack ~mode =
  match
    Netsim.Net.call net ~src ~dst:server ~service:"rvd"
      (Printf.sprintf "SPINUP %s %s" pack mode)
  with
  | Ok "OK" -> Ok ()
  | Ok "NOPACK" -> Error No_such_pack
  | Ok "DENIED" -> Error Access_denied
  | Ok _ -> Error No_such_pack
  | Error f -> Error (Unreachable f)
