let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let trim_whitespace s =
  let n = String.length s in
  let i = ref 0 and j = ref (n - 1) in
  while !i < n && is_space s.[!i] do incr i done;
  while !j >= !i && is_space s.[!j] do decr j done;
  String.sub s !i (!j - !i + 1)

let split_words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let canonicalize_hostname = Lookup.canon_host
let atot = string_of_int

let statuses =
  [
    (0, "not registered");
    (1, "active");
    (2, "half registered");
    (3, "marked for deletion");
    (4, "not registerable");
  ]

let user_status_to_string status =
  Option.value (List.assoc_opt status statuses)
    ~default:(Printf.sprintf "unknown status %d" status)

let user_status_of_string s =
  List.find_map
    (fun (code, name) -> if name = s then Some code else None)
    statuses

let bool_flag_to_string b = if b then "on" else "off"

let nfsphys_status_to_string status =
  let bits =
    List.filter_map
      (fun (bit, name) -> if status land bit <> 0 then Some name else None)
      [
        (Mrconst.fs_student, "student");
        (Mrconst.fs_faculty, "faculty");
        (Mrconst.fs_staff, "staff");
        (Mrconst.fs_misc, "misc");
      ]
  in
  match bits with [] -> "none" | _ -> String.concat "+" bits

module Hashq = struct
  type 'a t = (string, 'a) Hashtbl.t

  let create hint : 'a t = Hashtbl.create hint
  let store t k v = Hashtbl.replace t k v
  let fetch t k = Hashtbl.find_opt t k
  let remove t k = Hashtbl.remove t k
  let iter t f = Hashtbl.iter f t
  let length t = Hashtbl.length t
end

module Fifo = struct
  type 'a t = { mutable front : 'a list; mutable back : 'a list }

  let create () = { front = []; back = [] }
  let put t x = t.back <- x :: t.back

  let normalize t =
    if t.front = [] then begin
      t.front <- List.rev t.back;
      t.back <- []
    end

  let get t =
    normalize t;
    match t.front with
    | [] -> None
    | x :: rest ->
        t.front <- rest;
        Some x

  let peek t =
    normalize t;
    match t.front with [] -> None | x :: _ -> Some x

  let length t = List.length t.front + List.length t.back
  let is_empty t = t.front = [] && t.back = []
end
