lib/moira/catalog.mli: Mdb Query
