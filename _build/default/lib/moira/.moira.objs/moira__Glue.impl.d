lib/moira/glue.ml: List Mdb Query
