lib/moira/lookup.mli: Mdb Relation
