lib/moira/q_filesys.ml: Acl Array List Lookup Mdb Mr_err Option Pred Qlib Query Relation String Table Value
