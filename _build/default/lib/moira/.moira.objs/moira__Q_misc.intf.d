lib/moira/q_misc.mli: Query
