lib/moira/mr_client.ml: Gdb Krb List Mr_err Netsim Protocol
