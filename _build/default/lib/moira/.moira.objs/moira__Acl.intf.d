lib/moira/acl.mli: Mdb
