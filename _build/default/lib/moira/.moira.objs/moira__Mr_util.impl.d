lib/moira/mr_util.ml: Hashtbl List Lookup Mrconst Option Printf String
