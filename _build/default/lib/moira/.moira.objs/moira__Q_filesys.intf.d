lib/moira/q_filesys.mli: Query
