lib/moira/mr_server.ml: Catalog Gdb Hashtbl Krb List Mdb Mr_err Protocol Query String
