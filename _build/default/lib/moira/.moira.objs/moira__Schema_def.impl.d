lib/moira/schema_def.ml: Db List Relation Schema Table Value
