lib/moira/protocol.ml: Gdb
