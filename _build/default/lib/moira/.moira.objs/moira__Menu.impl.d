lib/moira/menu.ml: List Mr_util Printf
