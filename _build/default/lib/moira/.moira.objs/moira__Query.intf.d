lib/moira/query.mli: Mdb
