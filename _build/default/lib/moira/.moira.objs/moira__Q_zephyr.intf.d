lib/moira/q_zephyr.mli: Query
