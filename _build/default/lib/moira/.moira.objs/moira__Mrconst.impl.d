lib/moira/mrconst.ml:
