lib/moira/lookup.ml: Int List Mdb Option Pred Relation String Table Value
