lib/moira/q_zephyr.ml: Acl List Mdb Mr_err Pred Qlib Query Relation Table Value
