lib/moira/q_list.ml: Acl Array Glob Int List Lookup Mdb Mr_err Mrconst Option Pred Printf Qlib Query Relation String Table Value
