lib/moira/mr_err.ml: Comerr
