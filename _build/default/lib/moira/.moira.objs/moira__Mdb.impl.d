lib/moira/mdb.ml: Array Db Journal List Lock Pred Relation Schema_def Table Value
