lib/moira/mrconst.mli:
