lib/moira/q_users.mli: Query
