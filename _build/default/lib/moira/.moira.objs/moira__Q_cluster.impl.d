lib/moira/q_cluster.ml: Array Glob List Lookup Mdb Mr_err Pred Qlib Query Relation Table Value
