lib/moira/qlib.mli: Query Relation
