lib/moira/protocol.mli:
