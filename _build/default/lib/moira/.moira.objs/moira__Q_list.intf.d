lib/moira/q_list.mli: Query
