lib/moira/mr_client.mli: Krb Netsim
