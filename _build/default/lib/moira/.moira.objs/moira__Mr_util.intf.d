lib/moira/mr_util.mli:
