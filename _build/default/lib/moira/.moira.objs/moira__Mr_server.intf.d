lib/moira/mr_server.mli: Gdb Krb Mdb Netsim Query
