lib/moira/catalog.ml: List Mr_err Printf Q_cluster Q_filesys Q_list Q_misc Q_server Q_users Q_zephyr Query String
