lib/moira/acl.ml: Array Hashtbl Int List Lookup Mdb Mr_err Option Pred Printf Relation String Table Value
