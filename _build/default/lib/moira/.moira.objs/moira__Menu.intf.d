lib/moira/menu.mli:
