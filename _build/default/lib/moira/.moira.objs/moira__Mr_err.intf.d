lib/moira/mr_err.mli: Comerr
