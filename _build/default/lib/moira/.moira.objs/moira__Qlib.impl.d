lib/moira/qlib.ml: Glob List Lookup Mdb Mr_err Query Relation String Table Value
