lib/moira/mdb.mli: Relation
