lib/moira/q_server.ml: Acl Glob List Lookup Mdb Mr_err Option Pred Qlib Query Relation String Table Value
