lib/moira/q_users.ml: Acl Array Int List Lookup Mdb Mr_err Mrconst Option Pred Printf Qlib Query Relation String Table Value
