lib/moira/glue.mli: Mdb Query
