lib/moira/query.ml: Acl Hashtbl List Mdb Mr_err Mrconst Printf Relation String
