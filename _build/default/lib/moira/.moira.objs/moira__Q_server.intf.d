lib/moira/q_server.mli: Query
