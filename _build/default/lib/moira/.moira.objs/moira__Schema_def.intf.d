lib/moira/schema_def.mli: Relation
