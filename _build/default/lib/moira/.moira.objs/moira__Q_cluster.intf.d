lib/moira/q_cluster.mli: Query
