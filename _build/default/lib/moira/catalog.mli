(** The full predefined-query catalogue: every handle of paper section 7
    plus the built-in specials of section 7.0.8 ([_help], [_list_queries],
    [_list_users]) and the [trigger_dcm] pseudo-query used for access
    checks on the Trigger_DCM protocol request. *)

val standard : unit -> Query.t list
(** The ordinary handles (sections 7.0.1–7.0.7). *)

val make :
  ?list_users:(unit -> string list list) ->
  ?trigger_dcm:(unit -> unit) ->
  ?extra:Query.t list ->
  unit ->
  Query.registry
(** Build the registry.  [list_users] supplies the server's live
    connection tuples for [_list_users] (defaults to empty).
    [trigger_dcm] runs when the [trigger_dcm] handle executes (defaults
    to a no-op); its capacls entry (tag ["tdcm"]) governs who may fire
    the DCM out of schedule.  [extra] adds further handles — e.g. ones
    produced by {!bind_database} and {!rename} for a secondary
    database. *)

val bind_database : Mdb.t -> Query.t list -> Query.t list
(** The multiple-database mechanism of paper section 5.1.D ("the
    ultimate capability of Moira supporting multiple databases through
    the same query mechanism ... the application merely passes a query
    handle to a function, which then resolves the database and query"):
    rebind each handle so that its access rule and handler run against
    the given database context, whatever the server's primary database
    is.  Combine with {!rename} to give the bound handles their own
    names. *)

val rename : name:string -> short:string -> Query.t -> Query.t
(** A copy of the handle under a new long/short name pair. *)
