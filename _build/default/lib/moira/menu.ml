type action = string list -> string list

type entry =
  | Command of string * action
  | Submenu of string * t

and t = {
  mtitle : string;
  mutable items : (string * entry) list; (* reverse addition order *)
}

let create ~title = { mtitle = title; items = [] }
let title t = t.mtitle

let add t key entry =
  t.items <- (key, entry) :: List.remove_assoc key t.items;
  t

let command ~key ~help action t = add t key (Command (help, action))
let submenu ~key ~help child t = add t key (Submenu (help, child))

let entries t =
  List.rev_map
    (fun (key, entry) ->
      match entry with
      | Command (help, _) -> (key, help)
      | Submenu (help, _) -> (key, help ^ " (menu)"))
    t.items

exception Quit_all

let rec run_level t ~input ~output =
  let prompt () = output (t.mtitle ^ "> ") in
  let help () =
    List.iter
      (fun (key, help) -> output (Printf.sprintf "  %-12s %s\n" key help))
      (entries t);
    output "  ?            this list\n  up           leave this menu\n  quit         leave every menu\n"
  in
  let rec loop () =
    prompt ();
    match input () with
    | None -> raise Quit_all
    | Some line -> (
        match Mr_util.split_words line with
        | [] -> loop ()
        | [ "?" ] | [ "help" ] ->
            help ();
            loop ()
        | [ "up" ] | [ "q" ] -> ()
        | [ "quit" ] -> raise Quit_all
        | key :: args -> (
            match List.assoc_opt key t.items with
            | Some (Command (_, action)) ->
                (try
                   List.iter (fun l -> output (l ^ "\n")) (action args)
                 with Failure msg -> output ("error: " ^ msg ^ "\n"));
                loop ()
            | Some (Submenu (_, child)) ->
                run_level child ~input ~output;
                loop ()
            | None ->
                output
                  (Printf.sprintf "unknown command %S; ? for help\n" key);
                loop ()))
  in
  loop ()

let run t ~input ~output =
  try run_level t ~input ~output with Quit_all -> ()

let run_channels t ic oc =
  run t
    ~input:(fun () ->
      try Some (input_line ic) with End_of_file -> None)
    ~output:(fun s ->
      output_string oc s;
      flush oc)
