(** Query handles for filesystems, NFS physical partitions and quotas
    (paper section 7.0.5). *)

val queries : Query.t list
(** The handles this module contributes to the catalogue. *)
