(** The grab-bag of routines the Moira library exports to servers and
    clients alongside the RPC calls (paper section 5.6.3): string
    utilities, flag conversion, a hash-table abstraction, and a simple
    queue — the menu package lives in {!Menu}. *)

val trim_whitespace : string -> string
(** Strip leading and trailing ASCII whitespace. *)

val split_words : string -> string list
(** Split on runs of whitespace, dropping empties. *)

val canonicalize_hostname : string -> string
(** Alias of {!Lookup.canon_host}: trim and upper-case. *)

val atot : int -> string
(** Render a unix-format time field for display (decimal seconds —
    Moira displays raw times; converting to calendar text is the
    client's business). *)

(** {1 Flag conversion} — "convert between flags integer and
    human-readable string". *)

val user_status_to_string : int -> string
(** The five account statuses of section 6 (USERS.status). *)

val user_status_of_string : string -> int option
(** Inverse of {!user_status_to_string} (exact match). *)

val bool_flag_to_string : bool -> string
(** "on"/"off" for display. *)

val nfsphys_status_to_string : int -> string
(** Render the nfsphys status bit field ("student+faculty", ...). *)

(** {1 Hash table abstraction} — the C library's fixed-size string-keyed
    hash package. *)
module Hashq : sig
  type 'a t

  val create : int -> 'a t
  (** A table with the given bucket-count hint. *)

  val store : 'a t -> string -> 'a -> unit
  (** Insert or replace. *)

  val fetch : 'a t -> string -> 'a option
  (** Look up. *)

  val remove : 'a t -> string -> unit
  (** Delete (no-op if absent). *)

  val iter : 'a t -> (string -> 'a -> unit) -> unit
  (** Visit every binding. *)

  val length : 'a t -> int
  (** Number of bindings. *)
end

(** {1 Queue abstraction} — the simple FIFO used by the server. *)
module Fifo : sig
  type 'a t

  val create : unit -> 'a t
  (** An empty queue. *)

  val put : 'a t -> 'a -> unit
  (** Enqueue at the tail. *)

  val get : 'a t -> 'a option
  (** Dequeue from the head ([None] when empty). *)

  val peek : 'a t -> 'a option
  (** Head without removing. *)

  val length : 'a t -> int
  (** Number of queued elements. *)

  val is_empty : 'a t -> bool
  (** Whether the queue is empty. *)
end
