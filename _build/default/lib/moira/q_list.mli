(** Query handles for lists and list membership (paper section 7.0.3). *)

val queries : Query.t list
(** The handles this module contributes to the catalogue. *)
