(** Major request numbers of the Moira protocol (paper section 5.3),
    allocated above the GDB framing ops. *)

val op_noop : int
(** Do nothing — for testing and profiling of the RPC layer. *)

val op_auth : int
(** Authenticate: args are the Kerberos authenticator blob and the client
    program name; later requests act as the authenticated principal. *)

val op_query : int
(** Run a predefined query: args are the handle name then its arguments;
    retrieved tuples come back in the reply. *)

val op_access : int
(** Check access to a query without running it. *)

val op_trigger_dcm : int
(** Ask the server to spawn a DCM pass now (access-checked against the
    [trigger_dcm] pseudo-query). *)

val moira_service : string
(** The service name the Moira server registers under (both on the
    simulated host and as a Kerberos service principal). *)
