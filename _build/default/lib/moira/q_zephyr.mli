(** Query handles for Zephyr class ACLs (paper section 7.0.6). *)

val queries : Query.t list
(** The handles this module contributes to the catalogue. *)
