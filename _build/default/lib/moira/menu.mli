(** The menu package of paper section 5.6.3 ("a menu package used for
    some of the clients"): hierarchical keyword menus driving actions,
    the skeleton of the interactive admin programs.

    A menu is a titled list of entries; each entry is a command (keyword,
    one-line help, an action taking the rest of the input line as
    arguments) or a sub-menu.  {!run} reads lines, dispatches on the
    first word, prints what actions return, and understands the built-in
    keywords [?]/[help] (list the entries), [up]/[q] (leave this menu),
    and [quit] (leave every menu). *)

type t

type action = string list -> string list
(** A command body: arguments in, display lines out. *)

val command : key:string -> help:string -> action -> t -> t
(** Add a command entry (last addition wins on duplicate keys). *)

val submenu : key:string -> help:string -> t -> t -> t
(** [submenu ~key ~help child parent] hangs [child] under [parent]. *)

val create : title:string -> t
(** An empty menu. *)

val title : t -> string
(** The menu's title. *)

val entries : t -> (string * string) list
(** The (keyword, help) pairs, in addition order — what [?] prints. *)

val run :
  t -> input:(unit -> string option) -> output:(string -> unit) -> unit
(** Drive the menu: prompt with ["title> "], read one line per
    iteration ([None] = end of input, treated as [quit]), dispatch.
    Unknown keywords produce an error line rather than failing. *)

val run_channels : t -> in_channel -> out_channel -> unit
(** {!run} over channels (interactive use). *)
