(** Constants from <moira.h>. *)

val unique_uid : string
(** Passed as the [uid] argument of [add_user] to request allocation of
    the next unused uid. *)

val unique_login : string
(** Passed as the [login] argument of [add_user] to request a placeholder
    login of ["#<uid>"] (a not-yet-registered account). *)

val unique_gid : string
(** Passed as the [gid] argument of [add_list] to request allocation of a
    fresh unix group id. *)

val fs_student : int
(** nfsphys [status] bit 0: student lockers. *)

val fs_faculty : int
(** nfsphys [status] bit 1: faculty lockers. *)

val fs_staff : int
(** nfsphys [status] bit 2: staff lockers. *)

val fs_misc : int
(** nfsphys [status] bit 3: miscellaneous. *)

val user_not_registered : int
(** users.status 0 — not registered, but registerable. *)

val user_active : int
(** users.status 1 — active account. *)

val user_half_registered : int
(** users.status 2 — half-registered. *)

val user_deleted : int
(** users.status 3 — marked for deletion. *)

val user_not_registerable : int
(** users.status 4 — not registerable. *)

val max_field_len : int
(** Longest accepted query argument; beyond it MR_ARG_TOO_LONG. *)
