(** The Moira server's database context: the relational store plus the
    journal of successful changes, the service/host lock table used by
    the DCM, id allocation from the values relation's hints, and the
    string-interning table. *)

type t

val create : clock:(unit -> int) -> t
(** A fresh context over a bootstrapped database (see
    {!Schema_def.create_db}).  [clock] must tick in seconds ("unix format
    time"). *)

val db : t -> Relation.Db.t
(** The underlying database. *)

val journal : t -> Relation.Journal.t
(** The journal of successful updates. *)

val locks : t -> Relation.Lock.t
(** The DCM's service/host lock table. *)

val now : t -> int
(** Current time in seconds. *)

val table : t -> string -> Relation.Table.t
(** Relation by name.  @raise Not_found for an unknown relation. *)

(** {1 Values relation} *)

val get_value : t -> string -> int option
(** Read a variable from the values relation. *)

val set_value : t -> string -> int -> unit
(** Write (creating if necessary) a variable. *)

val alloc_id : t -> string -> int
(** [alloc_id t hint] returns the current hint value of variable [hint]
    (e.g. ["users_id"], ["uid"], ["gid"]) and increments it — the paper's
    "hints for the next ID number to assign". *)

(** {1 Strings relation} *)

val intern_string : t -> string -> int
(** Id of the given string in the strings relation, inserting if new. *)

val find_string : t -> string -> int option
(** Id of the string if already interned. *)

val string_of_id : t -> int -> string option
(** The string with the given id. *)

(** {1 Alias-driven type checking} *)

val valid_type : t -> field:string -> string -> bool
(** Whether the alias relation has [(field, TYPE, value)] — the paper's
    data-driven validation of enumerated fields. *)

val type_values : t -> field:string -> string list
(** All legal values for a type-checked field. *)

(** {1 Audit trail} *)

val stamp : t -> who:string -> client:string -> prefix:string ->
  (string * Relation.Value.t) list
(** The three audit assignments [<prefix>modtime/modby/modwith] (empty
    prefix for the main trio) used when a query mutates a row. *)

val sync_tblstats : t -> unit
(** Refresh the tblstats relation's rows from the live per-table
    counters (called before dumps and by [get_all_table_stats]). *)
