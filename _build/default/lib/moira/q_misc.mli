(** Miscellaneous query handles (paper section 7.0.7): host access,
    network services, printcaps, aliases, values and table statistics. *)

val queries : Query.t list
(** The handles this module contributes to the catalogue. *)
