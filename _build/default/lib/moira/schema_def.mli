(** The Moira database schema (paper section 6): every relation, its
    columns, and the initial contents (type-checking aliases, value
    hints, capability ACLs, per-table statistics rows). *)

val all : Relation.Schema.t list
(** Every relation schema, in creation order. *)

val users : Relation.Schema.t
(** Account + finger + pobox information (one row per person). *)

val machine : Relation.Schema.t
val cluster : Relation.Schema.t
val mcmap : Relation.Schema.t
val svc : Relation.Schema.t
val list : Relation.Schema.t
val members : Relation.Schema.t
val servers : Relation.Schema.t
val serverhosts : Relation.Schema.t
val filesys : Relation.Schema.t
val nfsphys : Relation.Schema.t
val nfsquota : Relation.Schema.t
val zephyr : Relation.Schema.t
val hostaccess : Relation.Schema.t
val strings : Relation.Schema.t
val services : Relation.Schema.t
val printcap : Relation.Schema.t
val capacls : Relation.Schema.t
val alias : Relation.Schema.t
val values : Relation.Schema.t
val tblstats : Relation.Schema.t

val indexed_columns : string -> string list
(** Hash-indexed columns for a relation name (lookup keys used by the
    query catalogue). *)

val create_db : clock:(unit -> int) -> Relation.Db.t
(** Create all relations (with indexes) in a fresh database and load the
    bootstrap rows: TYPE/TYPEDATA aliases, the values relation's id hints
    and flags ([dcm_enable], [def_quota], ...), and one tblstats row per
    relation.  Capability ACLs start empty (owner lists are installed by
    higher layers once lists exist). *)
