(** The direct "glue" library (paper section 5.6): the same interface as
    the RPC application library, but calling the query engine in-process.
    Used by the DCM and the backup utilities, which run on the database
    host — it avoids RPC overhead and does not use Kerberos
    authentication (callers are privileged). *)

type t

val create : ?client:string -> mdb:Mdb.t -> registry:Query.registry -> unit -> t
(** A privileged direct handle.  [client] is recorded as modwith on
    changes (default ["dcm"]). *)

val query : t -> name:string -> string list -> (string list list, int) result
(** Run a query handle directly (no access checks, no network). *)

val query_iter :
  t -> name:string -> string list -> callback:(string list -> unit) -> int
(** Callback form, mirroring [mr_query]. *)

val access : t -> name:string -> string list -> int
(** Access check as the privileged caller (always allowed for known
    queries; still validates arity). *)

val mdb : t -> Mdb.t
(** The underlying database context. *)
