type conn_state = {
  mutable principal : string;
  mutable client_name : string;
}

type cache_stats = {
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
}

type t = {
  mdb : Mdb.t;
  registry : Query.registry;
  gdb : conn_state Gdb.Server.t;
  mutable queries_served : int;
  (* The access cache the paper anticipates in section 5.5: verdicts of
     Access requests keyed by (principal, query, args), flushed whenever
     any side-effecting query commits (ACLs live in the database, so any
     write may change them; flushing on every write is conservative but
     always correct). *)
  access_cache : (string, int) Hashtbl.t option;
  cache_stats : cache_stats;
}

let registry t = t.registry
let mdb t = t.mdb
let queries_served t = t.queries_served
let connection_count t = Gdb.Server.connection_count t.gdb
let access_cache_stats t = t.cache_stats

let cache_key principal name args =
  String.concat "\000" (principal :: name :: args)

let create ?(backend = Gdb.Server.Per_server 1500) ?(access_cache = false)
    ?extra_queries ~net ~host ~mdb ~kdc ?(trigger_dcm = fun () -> ()) () =
  ignore (Krb.Kdc.register_service kdc Protocol.moira_service);
  let krb_ctx =
    match Krb.Kdc.server_ctx kdc ~service:Protocol.moira_service with
    | Ok ctx -> ctx
    | Error _ -> assert false (* we just registered the service *)
  in
  let t_ref = ref None in
  let list_users () =
    match !t_ref with
    | None -> []
    | Some t ->
        List.map
          (fun (info : conn_state Gdb.Server.conn_info) ->
            [
              info.Gdb.Server.state.principal;
              info.peer;
              (* ephemeral client port, synthesized from the conn id *)
              string_of_int (1024 + info.conn_id);
              string_of_int (info.connect_time / 1000);
              string_of_int info.conn_id;
            ])
          (Gdb.Server.connections t.gdb)
  in
  let registry =
    Catalog.make ~list_users ~trigger_dcm ?extra:extra_queries ()
  in
  let ctx_of (info : conn_state Gdb.Server.conn_info) =
    {
      Query.mdb;
      caller = info.state.principal;
      client = info.state.client_name;
      privileged = false;
    }
  in
  let do_access t info name args =
    let check () =
      match Query.check registry (ctx_of info) ~name args with
      | Ok () -> 0
      | Error code -> code
    in
    match t.access_cache with
    | None -> check ()
    | Some cache -> (
        let key = cache_key info.Gdb.Server.state.principal name args in
        match Hashtbl.find_opt cache key with
        | Some verdict ->
            t.cache_stats.hits <- t.cache_stats.hits + 1;
            verdict
        | None ->
            t.cache_stats.misses <- t.cache_stats.misses + 1;
            let verdict = check () in
            Hashtbl.replace cache key verdict;
            verdict)
  in
  let invalidate t =
    match t.access_cache with
    | Some cache when Hashtbl.length cache > 0 ->
        t.cache_stats.invalidations <- t.cache_stats.invalidations + 1;
        Hashtbl.reset cache
    | _ -> ()
  in
  let handler info (req : Gdb.Wire.request) =
    let t = match !t_ref with Some t -> t | None -> assert false in
    if req.op = Protocol.op_noop then (0, [])
    else if req.op = Protocol.op_auth then begin
      match req.args with
      | [ authenticator; client_name ] -> (
          match Krb.Kdc.rd_req krb_ctx authenticator with
          | Ok principal ->
              info.Gdb.Server.state.principal <- principal;
              info.state.client_name <- client_name;
              (0, [])
          | Error code -> (code, []))
      | _ -> (Mr_err.args, [])
    end
    else if req.op = Protocol.op_query then begin
      t.queries_served <- t.queries_served + 1;
      match req.args with
      | name :: args -> (
          match Query.execute registry (ctx_of info) ~name args with
          | Ok tuples ->
              (match Query.find registry name with
              | Some q when q.Query.kind <> Query.Retrieve -> invalidate t
              | _ -> ());
              (0, tuples)
          | Error code -> (code, []))
      | [] -> (Mr_err.args, [])
    end
    else if req.op = Protocol.op_access then begin
      match req.args with
      | name :: args -> (do_access t info name args, [])
      | [] -> (Mr_err.args, [])
    end
    else if req.op = Protocol.op_trigger_dcm then begin
      match
        Query.execute registry (ctx_of info) ~name:"trigger_dcm" []
      with
      | Ok _ -> (0, [])
      | Error code -> (code, [])
    end
    else (Mr_err.no_handle, [])
  in
  let gdb =
    Gdb.Server.create ~backend ~net ~host ~service:Protocol.moira_service
      ~init:(fun ~peer:_ -> { principal = ""; client_name = "" })
      ~handler ()
  in
  let t =
    {
      mdb;
      registry;
      gdb;
      queries_served = 0;
      access_cache =
        (if access_cache then Some (Hashtbl.create 256) else None);
      cache_stats = { hits = 0; misses = 0; invalidations = 0 };
    }
  in
  t_ref := Some t;
  t
