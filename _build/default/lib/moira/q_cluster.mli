(** Query handles for machines and clusters (paper section 7.0.2). *)

val queries : Query.t list
(** The handles this module contributes to the catalogue. *)
