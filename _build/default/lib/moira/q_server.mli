(** Query handles for servers and server/host tuples (paper section
    7.0.4) — the data the DCM drives updates from. *)

val queries : Query.t list
(** The handles this module contributes to the catalogue. *)
