(** Entity resolution helpers shared by the query catalogue, the access
    control layer and the DCM generators: translating between the names
    clients speak and the internal database ids rows reference. *)

val user_id : Mdb.t -> string -> int option
(** users_id for an exact login name. *)

val user_login : Mdb.t -> int -> string option
(** Login name for a users_id. *)

val user_row : Mdb.t -> int -> Relation.Value.t array option
(** Full users row for a users_id. *)

val machine_id : Mdb.t -> string -> int option
(** mach_id for a hostname (machine names are case-insensitive and stored
    upper-case). *)

val machine_name : Mdb.t -> int -> string option
(** Canonical (upper-case) hostname for a mach_id. *)

val cluster_id : Mdb.t -> string -> int option
(** clu_id for a cluster name (case-sensitive). *)

val cluster_name : Mdb.t -> int -> string option
(** Name for a clu_id. *)

val list_id : Mdb.t -> string -> int option
(** list_id for an exact list name. *)

val list_name : Mdb.t -> int -> string option
(** Name for a list_id. *)

val list_row : Mdb.t -> int -> Relation.Value.t array option
(** Full list row for a list_id. *)

val filesys_id : Mdb.t -> string -> int option
(** filsys_id for an exact label ([order] 0 row wins if several). *)

val canon_host : string -> string
(** Canonicalize a hostname: trim and upper-case (section 5.6.3's
    "canonicalize hostname"). *)
