(** Query handles for users (paper section 7.0.1). *)

val queries : Query.t list
(** The handles this module contributes to the catalogue. *)
