(** The Zephyr notification substrate.

    Enough of the Athena notification service to exercise Moira's two
    interactions with it: (a) the DCM sends failure zephyrgrams to class
    MOIRA instance DCM (paper section 5.7.1), and (b) Moira distributes
    per-class transmit ACL files to the zephyr servers (section 5.8.2),
    which this server loads from its filesystem and enforces. *)

type notice = {
  sender : string;  (** Sending principal. *)
  cls : string;  (** Zephyr class. *)
  instance : string;  (** Instance within the class. *)
  message : string;  (** Body. *)
  time : int;  (** Engine ms at send. *)
}

type t

val start : ?acl_dir:string -> Netsim.Host.t -> Sim.Engine.t -> t
(** Start a zephyr server on the host.  If [acl_dir] is given, files
    named [<class>.acl] under it (one principal per line, [*.*@*] for
    everybody) restrict who may transmit to that class; classes without
    an ACL file are unrestricted.  Registers network service ["zephyr"]
    accepting ["SEND sender cls instance message"] payloads and a boot
    hook reloading the ACLs. *)

val reload_acls : t -> unit
(** Re-read the ACL files from disk (after a Moira update). *)

val subscribe : t -> cls:string -> (notice -> unit) -> unit
(** Register a local subscriber callback for a class. *)

val transmit :
  t -> sender:string -> cls:string -> instance:string -> string ->
  (unit, [ `Not_authorized ]) result
(** In-process send: ACL-checked, then delivered to subscribers and
    logged. *)

val notices : t -> notice list
(** Every notice delivered, oldest first (the test observatory). *)

val notices_for : t -> cls:string -> notice list
(** Delivered notices of one class. *)

val acl_classes : t -> string list
(** Classes that currently have an ACL loaded. *)

(** {1 Client side} *)

val send :
  Netsim.Net.t -> src:string -> server:string -> sender:string ->
  cls:string -> instance:string -> string ->
  (unit, [ `Not_authorized | `Net of Netsim.Net.failure ]) result
(** Send a zephyrgram via the server on host [server]. *)
