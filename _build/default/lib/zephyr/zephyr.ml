type notice = {
  sender : string;
  cls : string;
  instance : string;
  message : string;
  time : int;
}

type t = {
  host : Netsim.Host.t;
  engine : Sim.Engine.t;
  acl_dir : string option;
  acls : (string, string list) Hashtbl.t; (* class -> allowed senders *)
  subscribers : (string, (notice -> unit) list) Hashtbl.t;
  mutable log : notice list; (* newest first *)
}

let reload_acls t =
  Hashtbl.reset t.acls;
  match t.acl_dir with
  | None -> ()
  | Some dir ->
      let fs = Netsim.Host.fs t.host in
      let prefix = dir ^ "/" in
      List.iter
        (fun path ->
          if
            String.length path > String.length prefix
            && String.sub path 0 (String.length prefix) = prefix
            && Filename.check_suffix path ".acl"
          then begin
            let cls = Filename.chop_suffix (Filename.basename path) ".acl" in
            let members =
              match Netsim.Vfs.read fs ~path with
              | Some contents ->
                  String.split_on_char '\n' contents
                  |> List.map String.trim
                  |> List.filter (fun l -> l <> "")
              | None -> []
            in
            Hashtbl.replace t.acls cls members
          end)
        (Netsim.Vfs.list fs)

let authorized t ~sender ~cls =
  match Hashtbl.find_opt t.acls cls with
  | None -> true (* no ACL file: unrestricted class *)
  | Some members ->
      List.exists (fun m -> m = "*.*@*" || m = sender) members

let transmit t ~sender ~cls ~instance message =
  if not (authorized t ~sender ~cls) then Error `Not_authorized
  else begin
    let notice =
      { sender; cls; instance; message; time = Sim.Engine.now t.engine }
    in
    t.log <- notice :: t.log;
    List.iter
      (fun f -> f notice)
      (Option.value (Hashtbl.find_opt t.subscribers cls) ~default:[]);
    Ok ()
  end

let subscribe t ~cls f =
  let existing = Option.value (Hashtbl.find_opt t.subscribers cls) ~default:[] in
  Hashtbl.replace t.subscribers cls (existing @ [ f ])

let notices t = List.rev t.log
let notices_for t ~cls = List.filter (fun n -> n.cls = cls) (notices t)
let acl_classes t = Hashtbl.fold (fun c _ acc -> c :: acc) t.acls []

(* Wire format: "SEND sender cls instance message..." with the first
   three fields space-separated and the rest the message body. *)
let start ?acl_dir host engine =
  let t =
    {
      host;
      engine;
      acl_dir;
      acls = Hashtbl.create 17;
      subscribers = Hashtbl.create 17;
      log = [];
    }
  in
  reload_acls t;
  Netsim.Host.register host ~service:"zephyr" (fun ~src:_ payload ->
      match String.split_on_char ' ' payload with
      | "SEND" :: sender :: cls :: instance :: rest -> (
          let message = String.concat " " rest in
          match transmit t ~sender ~cls ~instance message with
          | Ok () -> "OK"
          | Error `Not_authorized -> "NOAUTH")
      | _ -> "BADREQ");
  Netsim.Host.on_boot host (fun _ -> reload_acls t);
  t

let send net ~src ~server ~sender ~cls ~instance message =
  let payload =
    Printf.sprintf "SEND %s %s %s %s" sender cls instance message
  in
  match Netsim.Net.call net ~src ~dst:server ~service:"zephyr" payload with
  | Ok "OK" -> Ok ()
  | Ok _ -> Error `Not_authorized
  | Error f -> Error (`Net f)
