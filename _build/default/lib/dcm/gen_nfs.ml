open Relation
open Gen_util

let partition_base dir =
  let trimmed =
    if String.length dir > 0 && dir.[0] = '/' then
      String.sub dir 1 (String.length dir - 1)
    else dir
  in
  String.map (fun c -> if c = '/' then '_' else c) trimmed

let credential_line mdb row =
  let login = Value.str (ufield mdb row "login") in
  let uid = Value.int (ufield mdb row "uid") in
  let users_id = Value.int (ufield mdb row "users_id") in
  let gids =
    List.map (fun (_, g) -> string_of_int g)
      (group_pairs mdb ~users_id ~login)
  in
  String.concat ":" ((login :: [ string_of_int uid ]) @ gids)

(* credentials for one host: all active users, or just the members of the
   list named in value3. *)
let credentials_file mdb ~value3 =
  let lines = ref [] in
  let include_user =
    if value3 = "" then fun _ -> true
    else
      match Moira.Lookup.list_id mdb value3 with
      | Some list_id ->
          let members = Moira.Acl.expand_users mdb ~list_id in
          fun login -> List.mem login members
      | None -> fun _ -> false
  in
  active_users mdb (fun row ->
      let login = Value.str (ufield mdb row "login") in
      if include_user login then
        lines := credential_line mdb row :: !lines);
  ("credentials", sorted_lines !lines)

let quotas_and_dirs mdb ~nfsphys_id ~dir =
  let base = partition_base dir in
  let filesys = Moira.Mdb.table mdb "filesys" in
  let nfsquota = Moira.Mdb.table mdb "nfsquota" in
  let fss = Table.select filesys (Pred.eq_int "phys_id" nfsphys_id) in
  let quota_lines = ref [] and dir_lines = ref [] in
  List.iter
    (fun (_, fs) ->
      let filsys_id = Value.int (Table.field filesys fs "filsys_id") in
      List.iter
        (fun (_, q) ->
          match
            Moira.Lookup.user_row mdb
              (Value.int (Table.field nfsquota q "users_id"))
          with
          | Some urow ->
              quota_lines :=
                Printf.sprintf "%d %d"
                  (Value.int (ufield mdb urow "uid"))
                  (Value.int (Table.field nfsquota q "quota"))
                :: !quota_lines
          | None -> ())
        (Table.select nfsquota (Pred.eq_int "filsys_id" filsys_id));
      if Value.bool (Table.field filesys fs "createflg") then begin
        let owner_uid =
          match
            Moira.Lookup.user_row mdb
              (Value.int (Table.field filesys fs "owner"))
          with
          | Some urow -> Value.int (ufield mdb urow "uid")
          | None -> 0
        in
        let group_gid =
          match
            Moira.Lookup.list_row mdb
              (Value.int (Table.field filesys fs "owners"))
          with
          | Some lrow ->
              Value.int (Table.field (Moira.Mdb.table mdb "list") lrow "gid")
          | None -> 0
        in
        dir_lines :=
          Printf.sprintf "%s %d %d %s"
            (Value.str (Table.field filesys fs "name"))
            owner_uid group_gid
            (Value.str (Table.field filesys fs "lockertype"))
          :: !dir_lines
      end)
    fss;
  [
    (base ^ ".quotas", sorted_lines !quota_lines);
    (base ^ ".dirs", sorted_lines !dir_lines);
  ]

let generate glue =
  let mdb = Moira.Glue.mdb glue in
  let shosts = Moira.Mdb.table mdb "serverhosts" in
  let nfsphys = Moira.Mdb.table mdb "nfsphys" in
  let per_host =
    Table.select shosts
      (Pred.conj [ Pred.eq_str "service" "NFS"; Pred.eq_bool "enable" true ])
    |> List.filter_map (fun (_, sh) ->
           let mach_id = Value.int (Table.field shosts sh "mach_id") in
           match Moira.Lookup.machine_name mdb mach_id with
           | None -> None
           | Some machine ->
               let value3 = Value.str (Table.field shosts sh "value3") in
               let creds = credentials_file mdb ~value3 in
               let partition_files =
                 Table.select nfsphys (Pred.eq_int "mach_id" mach_id)
                 |> List.concat_map (fun (_, p) ->
                        quotas_and_dirs mdb
                          ~nfsphys_id:
                            (Value.int (Table.field nfsphys p "nfsphys_id"))
                          ~dir:(Value.str (Table.field nfsphys p "dir")))
               in
               Some (machine, creds :: partition_files))
  in
  { Gen.common = []; per_host }

let generator =
  {
    Gen.service = "NFS";
    watches =
      [
        Gen.watch ~columns:[ "modtime" ] "users";
        Gen.watch "filesys";
        Gen.watch "nfsphys";
        Gen.watch "nfsquota";
        Gen.watch "list";
        Gen.watch ~columns:[ "modtime" ] "serverhosts";
      ];
    generate;
  }
