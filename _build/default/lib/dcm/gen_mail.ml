open Relation
open Gen_util

let render_member mdb mtype mid =
  match mtype with
  | "USER" -> Moira.Lookup.user_login mdb mid
  | "LIST" -> Moira.Lookup.list_name mdb mid
  | _ -> Moira.Mdb.string_of_id mdb mid

(* aliases: for each active maillist an owner- line (when the ACE is a
   user or list) and the membership line; then pobox forwarding for every
   active user. *)
let aliases_file mdb =
  let lists = Moira.Mdb.table mdb "list" in
  let members = Moira.Mdb.table mdb "members" in
  let buf = Buffer.create 65536 in
  let maillists =
    Table.select lists
      (Pred.conj [ Pred.eq_bool "maillist" true; Pred.eq_bool "active" true ])
    |> List.sort (fun (_, a) (_, b) ->
           String.compare
             (Value.str (Table.field lists a "name"))
             (Value.str (Table.field lists b "name")))
  in
  List.iter
    (fun (_, row) ->
      let name = Value.str (Table.field lists row "name") in
      let list_id = Value.int (Table.field lists row "list_id") in
      (match Value.str (Table.field lists row "acl_type") with
      | "USER" | "LIST" -> (
          let ace_id = Value.int (Table.field lists row "acl_id") in
          match
            render_member mdb
              (Value.str (Table.field lists row "acl_type"))
              ace_id
          with
          | Some owner ->
              Buffer.add_string buf
                (Printf.sprintf "owner-%s: %s\n" name owner)
          | None -> ())
      | _ -> ());
      let ms =
        Table.select members (Pred.eq_int "list_id" list_id)
        |> List.filter_map (fun (_, m) ->
               render_member mdb (Value.str m.(1)) (Value.int m.(2)))
        |> List.sort String.compare
      in
      Buffer.add_string buf
        (Printf.sprintf "%s: %s\n" name (String.concat ", " ms)))
    maillists;
  let pobox_lines = ref [] in
  active_users mdb (fun row ->
      if Value.str (ufield mdb row "potype") = "POP" then begin
        let login = Value.str (ufield mdb row "login") in
        match
          Moira.Lookup.machine_name mdb (Value.int (ufield mdb row "pop_id"))
        with
        | Some machine ->
            pobox_lines :=
              Printf.sprintf "%s: %s@%s.LOCAL" login login
                (String.uppercase_ascii (short_host machine))
              :: !pobox_lines
        | None -> ()
      end);
  Buffer.add_string buf (sorted_lines !pobox_lines);
  ("aliases", Buffer.contents buf)

let passwd_file mdb =
  let lines = ref [] in
  active_users mdb (fun row ->
      let login = Value.str (ufield mdb row "login") in
      lines :=
        Printf.sprintf "%s:*:%d:101:%s,,,:/mit/%s:%s" login
          (Value.int (ufield mdb row "uid"))
          (Value.str (ufield mdb row "fullname"))
          login
          (Value.str (ufield mdb row "shell"))
        :: !lines);
  ("passwd", sorted_lines !lines)

let generate glue =
  let mdb = Moira.Glue.mdb glue in
  { Gen.common = [ aliases_file mdb; passwd_file mdb ]; per_host = [] }

let generator =
  {
    Gen.service = "MAIL";
    watches =
      [
        Gen.watch ~columns:[ "modtime"; "pmodtime" ] "users";
        Gen.watch "list";
        Gen.watch "machine";
        Gen.watch ~columns:[] "strings";
      ];
    generate;
  }
