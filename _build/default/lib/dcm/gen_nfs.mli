(** The NFS generator (paper section 5.8.2): per-server credentials,
    per-partition quotas and directories files.

    Which credentials file a server receives is controlled by the
    [value3] field of its serverhosts row: a list name restricts the
    credentials to that list's (recursive) membership; blank means all
    active users. *)

val generator : Gen.t
(** service "NFS". *)

val partition_base : string -> string
(** File-name stem for a partition directory ("/u1/lockers" ->
    "u1_lockers"), used to name [<partition>.quotas] /
    [<partition>.dirs]. *)
