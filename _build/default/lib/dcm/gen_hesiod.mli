(** The Hesiod generator: builds the eleven BIND-format [*.db] files of
    paper section 5.8.2 from the Moira database.  All hesiod target
    machines receive identical files, so everything is in the generator
    output's [common] set. *)

val generator : Gen.t
(** service "HESIOD". *)
