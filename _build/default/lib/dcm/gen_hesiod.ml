open Relation
open Gen_util

let u key data = Hesiod.Hes_db.format_unspeca ~key data [@@inline]
let c key target = Hesiod.Hes_db.format_cname ~key target [@@inline]

(* passwd.db, uid.db *)
let passwd_files mdb =
  let passwd = ref [] and uid = ref [] in
  active_users mdb (fun row ->
      let login = Value.str (ufield mdb row "login") in
      let uidv = Value.int (ufield mdb row "uid") in
      let line =
        Printf.sprintf "%s:*:%d:101:%s,,,,:/mit/%s:%s" login uidv
          (Value.str (ufield mdb row "fullname"))
          login
          (Value.str (ufield mdb row "shell"))
      in
      passwd := u (login ^ ".passwd") line :: !passwd;
      uid :=
        c (string_of_int uidv ^ ".uid") (login ^ ".passwd") :: !uid);
  ( ("passwd.db", sorted_lines !passwd),
    ("uid.db", sorted_lines !uid) )

(* pobox.db: active users with POP boxes *)
let pobox_file mdb =
  let lines = ref [] in
  active_users mdb (fun row ->
      if Value.str (ufield mdb row "potype") = "POP" then begin
        let login = Value.str (ufield mdb row "login") in
        match
          Moira.Lookup.machine_name mdb (Value.int (ufield mdb row "pop_id"))
        with
        | Some machine ->
            lines :=
              u (login ^ ".pobox")
                (Printf.sprintf "POP %s %s" machine login)
              :: !lines
        | None -> ()
      end);
  ("pobox.db", sorted_lines !lines)

(* group.db, gid.db: active unix groups *)
let group_files mdb =
  let tbl = Moira.Mdb.table mdb "list" in
  let group = ref [] and gid = ref [] in
  List.iter
    (fun (_, row) ->
      let name = Value.str (Table.field tbl row "name") in
      let g = Value.int (Table.field tbl row "gid") in
      group :=
        u (name ^ ".group") (Printf.sprintf "%s:*:%d:" name g) :: !group;
      gid := c (string_of_int g ^ ".gid") (name ^ ".group") :: !gid)
    (Table.select tbl
       (Pred.conj
          [ Pred.eq_bool "grouplist" true; Pred.eq_bool "active" true ]));
  ( ("group.db", sorted_lines !group),
    ("gid.db", sorted_lines !gid) )

(* grplist.db: colon-separated (group, gid) pairs per active user *)
let grplist_file mdb =
  let lines = ref [] in
  active_users mdb (fun row ->
      let login = Value.str (ufield mdb row "login") in
      let users_id = Value.int (ufield mdb row "users_id") in
      let pairs = group_pairs mdb ~users_id ~login in
      if pairs <> [] then begin
        let rendered =
          String.concat ":"
            (List.map (fun (n, g) -> Printf.sprintf "%s:%d" n g) pairs)
        in
        lines := u (login ^ ".grplist") rendered :: !lines
      end);
  ("grplist.db", sorted_lines !lines)

(* cluster.db: per-cluster service data plus machine CNAMEs; machines in
   several clusters get a pseudo-cluster holding the union of the data. *)
let cluster_file mdb =
  let svc = Moira.Mdb.table mdb "svc" in
  let mcmap = Moira.Mdb.table mdb "mcmap" in
  let cluster_data clu_id =
    Table.select svc (Pred.eq_int "clu_id" clu_id)
    |> List.map (fun (_, row) ->
           Printf.sprintf "%s %s" (Value.str row.(1)) (Value.str row.(2)))
  in
  let lines = ref [] in
  (* per-cluster UNSPECA lines *)
  let clusters = Moira.Mdb.table mdb "cluster" in
  List.iter
    (fun (_, row) ->
      let name = Value.str (Table.field clusters row "name") in
      let clu_id = Value.int (Table.field clusters row "clu_id") in
      List.iter
        (fun data -> lines := u (name ^ ".cluster") data :: !lines)
        (cluster_data clu_id))
    (Table.select clusters Pred.True);
  (* machine CNAMEs *)
  let machines = Moira.Mdb.table mdb "machine" in
  List.iter
    (fun (_, row) ->
      let mname = Value.str (Table.field machines row "name") in
      let mach_id = Value.int (Table.field machines row "mach_id") in
      let clus =
        Table.select mcmap (Pred.eq_int "mach_id" mach_id)
        |> List.filter_map (fun (_, m) ->
               Moira.Lookup.cluster_name mdb (Value.int m.(1)))
        |> List.sort String.compare
      in
      match clus with
      | [] -> ()
      | [ cname ] ->
          lines := c (mname ^ ".cluster") (cname ^ ".cluster") :: !lines
      | several ->
          (* pseudo-cluster: union of all the member clusters' data *)
          let pseudo = String.lowercase_ascii mname ^ "-pseudo" in
          List.iter
            (fun cname ->
              match Moira.Lookup.cluster_id mdb cname with
              | Some clu_id ->
                  List.iter
                    (fun data ->
                      lines := u (pseudo ^ ".cluster") data :: !lines)
                    (cluster_data clu_id)
              | None -> ())
            several;
          lines := c (mname ^ ".cluster") (pseudo ^ ".cluster") :: !lines)
    (Table.select machines Pred.True);
  ("cluster.db", sorted_lines !lines)

(* filsys.db *)
let filsys_file mdb =
  let tbl = Moira.Mdb.table mdb "filesys" in
  let lines = ref [] in
  List.iter
    (fun (_, row) ->
      let label = Value.str (Table.field tbl row "label") in
      let machine =
        Option.value
          (Moira.Lookup.machine_name mdb
             (Value.int (Table.field tbl row "mach_id")))
          ~default:"?"
      in
      let data =
        Printf.sprintf "%s %s %s %s %s"
          (Value.str (Table.field tbl row "type"))
          (Value.str (Table.field tbl row "name"))
          (short_host machine)
          (Value.str (Table.field tbl row "access"))
          (Value.str (Table.field tbl row "mount"))
      in
      lines := u (label ^ ".filsys") data :: !lines)
    (Table.select tbl Pred.True);
  ("filsys.db", sorted_lines !lines)

(* printcap.db *)
let printcap_file mdb =
  let tbl = Moira.Mdb.table mdb "printcap" in
  let lines = ref [] in
  List.iter
    (fun (_, row) ->
      let name = Value.str (Table.field tbl row "name") in
      let machine =
        Option.value
          (Moira.Lookup.machine_name mdb
             (Value.int (Table.field tbl row "mach_id")))
          ~default:"?"
      in
      let data =
        Printf.sprintf "%s:rp=%s:rm=%s:sd=%s" name
          (Value.str (Table.field tbl row "rp"))
          machine
          (Value.str (Table.field tbl row "dir"))
      in
      lines := u (name ^ ".pcap") data :: !lines)
    (Table.select tbl Pred.True);
  ("printcap.db", sorted_lines !lines)

(* service.db: the services relation plus SERVICE aliases *)
let service_file mdb =
  let tbl = Moira.Mdb.table mdb "services" in
  let lines = ref [] in
  List.iter
    (fun (_, row) ->
      let name = Value.str (Table.field tbl row "name") in
      let data =
        Printf.sprintf "%s %s %d" name
          (String.lowercase_ascii (Value.str (Table.field tbl row "protocol")))
          (Value.int (Table.field tbl row "port"))
      in
      lines := u (name ^ ".service") data :: !lines)
    (Table.select tbl Pred.True);
  let aliases = Moira.Mdb.table mdb "alias" in
  List.iter
    (fun (_, row) ->
      lines :=
        c (Value.str row.(0) ^ ".service") (Value.str row.(2) ^ ".service")
        :: !lines)
    (Table.select aliases (Pred.eq_str "type" "SERVICE"));
  ("service.db", sorted_lines !lines)

(* sloc.db: enabled server/host tuples *)
let sloc_file mdb =
  let tbl = Moira.Mdb.table mdb "serverhosts" in
  let lines = ref [] in
  List.iter
    (fun (_, row) ->
      match
        Moira.Lookup.machine_name mdb
          (Value.int (Table.field tbl row "mach_id"))
      with
      | Some machine ->
          (* the paper's sloc example carries the hostname unquoted *)
          lines :=
            Printf.sprintf "%s.sloc HS UNSPECA %s"
              (Value.str (Table.field tbl row "service"))
              machine
            :: !lines
      | None -> ())
    (Table.select tbl (Pred.eq_bool "enable" true));
  ("sloc.db", sorted_lines !lines)

let generate glue =
  let mdb = Moira.Glue.mdb glue in
  let passwd, uid = passwd_files mdb in
  let group, gid = group_files mdb in
  {
    Gen.common =
      [
        cluster_file mdb; filsys_file mdb; gid; group; grplist_file mdb;
        passwd; pobox_file mdb; printcap_file mdb; service_file mdb;
        sloc_file mdb; uid;
      ];
    per_host = [];
  }

let generator =
  {
    Gen.service = "HESIOD";
    watches =
      [
        Gen.watch ~columns:[ "modtime"; "fmodtime"; "pmodtime" ] "users";
        Gen.watch "machine";
        Gen.watch "cluster";
        Gen.watch "list";
        Gen.watch "filesys";
        Gen.watch "printcap";
        Gen.watch "services";
        Gen.watch ~columns:[ "modtime" ] "serverhosts";
        Gen.watch ~columns:[] "alias";
      ];
    generate;
  }
