(** Extraction helpers shared by the file generators. *)

val short_host : string -> string
(** Lower-case hostname up to the first dot ("CHARON.MIT.EDU" ->
    "charon"). *)

val active_users :
  Moira.Mdb.t -> (Relation.Value.t array -> unit) -> unit
(** Iterate the users relation rows whose status is active. *)

val ufield : Moira.Mdb.t -> Relation.Value.t array -> string -> Relation.Value.t
(** Field projection on a users row. *)

val group_pairs : Moira.Mdb.t -> users_id:int -> login:string ->
  (string * int) list
(** The (group name, gid) pairs for a user's grplist/credentials entry:
    the user's own group (the active group list named after the login)
    first, then every other active unix group reachable from the user's
    memberships, sorted by gid. *)

val sorted_lines : string list -> string
(** Join sorted lines with newlines, adding a trailing newline (empty
    input yields the empty string). *)
