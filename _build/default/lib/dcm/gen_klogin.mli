(** The host-access generator (an extension the paper's data model
    provides for: section 6's HOSTACCESS relation "contains the necessary
    information for Moira to be generating the [.klogin] files" — the
    per-machine lists of Kerberos principals allowed root access).

    Produces a per-host [.klogin] file for every machine with a
    hostaccess row, one principal per line, list ACEs expanded
    recursively.  Not part of the paper's 1988 deployment table, so the
    testbed does not enable it by default. *)

val generator : Gen.t
(** service "KLOGIN". *)
