let modulus = 65521

let adler32 s =
  let a = ref 1 and b = ref 0 in
  String.iter
    (fun c ->
      a := (!a + Char.code c) mod modulus;
      b := (!b + !a) mod modulus)
    s;
  (!b lsl 16) lor !a

let to_hex v = Printf.sprintf "%08x" v
let verify ~data ~checksum = to_hex (adler32 data) = checksum
