(** The Moira-to-server update protocol (paper section 5.9).

    All updates are initiated by the DCM and built from atomic
    operations so that a reboot leaves a consistent server:

    - {b Transfer phase}: authenticate; send the (tar) data file to the
      recorded target path suffixed [.moira_update], with a checksum;
      send the installation instruction sequence; flush to disk.
    - {b Execution phase}: on a single command, the server runs the
      staged script — extracting members as needed and swapping files
      into place with atomic renames.
    - {b Confirm}: the exit status returns to the DCM, which records it.

    Crash points are exposed at each window the paper analyses
    ([xfer], [before_exec], [mid_install], [after_exec]) via
    {!Netsim.Host.arm_crash}. *)

(** {1 Server side} *)

type server

type script = staged:string -> (unit, string) result
(** An installation instruction sequence: receives the staged archive
    path on the local filesystem; performs the installs. *)

val serve : ?token:string -> Netsim.Host.t -> server
(** Install the update service on a host.  [token] (default ["krb"])
    stands in for the Kerberos mutual authentication of section 5.9.2;
    requests bearing a different token are rejected. *)

val register_script : server -> name:string -> script -> unit
(** Make a named script available for execution on this host. *)

val install_files :
  Netsim.Host.t -> dir:string -> ?after:(unit -> unit) -> unit -> script
(** The standard install script: unpack the staged archive, save each
    existing member aside as [dir/<name>.moira_old], write the new
    contents to [dir/<name>.moira_update], flush, atomically rename over
    [dir/<name>], remove the staged file, then run [after] (e.g. restart
    the server to reload its files).  Calls the [mid_install] crash
    point between member installs and [before_restart] before [after]. *)

val revert_files :
  Netsim.Host.t -> dir:string -> ?after:(unit -> unit) -> unit -> script
(** Execution-phase instruction 3 of section 5.9: "revert the file —
    identical to swapping in the new data file, but instead puts the old
    file back".  For every member named in the staged archive whose
    [.moira_old] copy exists, atomically rename it back over the live
    file.  "May be useful in the case of an erroneous installation." *)

(** {1 Client side (the DCM)} *)

type failure =
  | Soft of int * string
      (** Expected, retryable: host down, timeout, checksum mismatch. *)
  | Hard of int * string
      (** Script failure or authentication refusal: operator attention. *)

val push :
  Netsim.Net.t -> src:string -> dst:string -> ?token:string ->
  target:string -> files:(string * string) list -> script:string ->
  unit -> (unit, failure) result
(** Run the full protocol against host [dst]: transfer [files] (packed
    as one archive) to [target^".moira_update"], stage [script], flush,
    execute, confirm. *)
