lib/dcm/gen_klogin.ml: Gen Gen_util List Moira Pred Relation Table Value
