lib/dcm/gen_zephyr.mli: Gen
