lib/dcm/gen_rvd.mli: Gen
