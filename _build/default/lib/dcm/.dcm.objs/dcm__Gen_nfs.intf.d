lib/dcm/gen_nfs.mli: Gen
