lib/dcm/gen_util.mli: Moira Relation
