lib/dcm/gen_rvd.ml: Gen Hashtbl List Moira Option Pred Printf Relation String Table Value
