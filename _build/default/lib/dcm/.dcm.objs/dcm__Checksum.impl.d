lib/dcm/checksum.ml: Char Printf String
