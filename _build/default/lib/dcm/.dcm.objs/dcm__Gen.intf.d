lib/dcm/gen.mli: Moira
