lib/dcm/tarlike.mli:
