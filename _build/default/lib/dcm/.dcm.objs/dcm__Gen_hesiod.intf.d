lib/dcm/gen_hesiod.mli: Gen
