lib/dcm/update.ml: Checksum Comerr Gdb Hashtbl List Moira Netsim Option Tarlike
