lib/dcm/gen_klogin.mli: Gen
