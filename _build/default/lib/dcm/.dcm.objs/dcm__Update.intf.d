lib/dcm/update.mli: Netsim
