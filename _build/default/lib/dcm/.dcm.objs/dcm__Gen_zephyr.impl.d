lib/dcm/gen_zephyr.ml: Gen Gen_util List Moira Pred Relation Table Value
