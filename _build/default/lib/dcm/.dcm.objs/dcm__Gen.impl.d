lib/dcm/gen.ml: List Moira Option Relation String Table Value
