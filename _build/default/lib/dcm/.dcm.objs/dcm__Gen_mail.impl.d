lib/dcm/gen_mail.ml: Array Buffer Gen Gen_util List Moira Pred Printf Relation String Table Value
