lib/dcm/manager.ml: Gen Gen_hesiod Gen_mail Gen_nfs Gen_zephyr Hashtbl List Lock Moira Netsim Option Pop Pred Printexc Printf Relation Sim String Table Tarlike Update Value Zephyr
