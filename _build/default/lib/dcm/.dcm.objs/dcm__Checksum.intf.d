lib/dcm/checksum.mli:
