lib/dcm/tarlike.ml: Buffer List Printf String
