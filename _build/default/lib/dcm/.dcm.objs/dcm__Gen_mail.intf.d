lib/dcm/gen_mail.mli: Gen
