lib/dcm/gen_util.ml: Int List Moira Pred Relation String Table Value
