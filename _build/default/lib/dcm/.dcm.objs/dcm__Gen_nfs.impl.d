lib/dcm/gen_nfs.ml: Gen Gen_util List Moira Pred Printf Relation String Table Value
