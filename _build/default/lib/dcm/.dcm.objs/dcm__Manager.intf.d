lib/dcm/manager.mli: Gen Moira Netsim Sim
