lib/dcm/gen_hesiod.ml: Array Gen Gen_util Hesiod List Moira Option Pred Printf Relation String Table Value
