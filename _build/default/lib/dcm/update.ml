(* Ops ride on the GDB wire framing with conn 0; each request's first
   argument is the auth token. *)
let op_xfer = 32
let op_script = 33
let op_flush = 34
let op_exec = 35

let service_name = "moira_update"
let staged_suffix = ".moira_update"
let script_staging = "/tmp/moira_inst"

type script = staged:string -> (unit, string) result

type server = {
  host : Netsim.Host.t;
  token : string;
  scripts : (string, script) Hashtbl.t;
}

let reply code tuples =
  Gdb.Wire.encode_reply
    { Gdb.Wire.rversion = Gdb.Wire.protocol_version; code; tuples }

let handle t payload =
  match Gdb.Wire.decode_request payload with
  | Error _ -> reply Gdb.Gdb_err.bad_frame []
  | Ok req -> (
      match req.Gdb.Wire.args with
      | token :: args when token = t.token ->
          let fs = Netsim.Host.fs t.host in
          if req.op = op_xfer then begin
            match args with
            | [ target; data; cksum ] ->
                if not (Checksum.verify ~data ~checksum:cksum) then
                  reply Moira.Mr_err.update_checksum []
                else begin
                  Netsim.Vfs.write fs ~path:(target ^ staged_suffix) data;
                  Netsim.Host.maybe_crash t.host ~point:"xfer";
                  reply 0 []
                end
            | _ -> reply Moira.Mr_err.args []
          end
          else if req.op = op_script then begin
            match args with
            | [ name ] ->
                Netsim.Vfs.write fs ~path:script_staging name;
                reply 0 []
            | _ -> reply Moira.Mr_err.args []
          end
          else if req.op = op_flush then begin
            Netsim.Vfs.flush fs;
            reply 0 []
          end
          else if req.op = op_exec then begin
            match args with
            | [ target ] -> (
                Netsim.Host.maybe_crash t.host ~point:"before_exec";
                let script_name =
                  Option.value
                    (Netsim.Vfs.read fs ~path:script_staging)
                    ~default:""
                in
                match Hashtbl.find_opt t.scripts script_name with
                | None ->
                    reply Moira.Mr_err.update_script
                      [ [ "unknown script " ^ script_name ] ]
                | Some script -> (
                    match script ~staged:(target ^ staged_suffix) with
                    | Ok () ->
                        Netsim.Host.maybe_crash t.host ~point:"after_exec";
                        reply 0 []
                    | Error msg ->
                        reply Moira.Mr_err.update_script [ [ msg ] ]))
            | _ -> reply Moira.Mr_err.args []
          end
          else reply Moira.Mr_err.no_handle []
      | _ :: _ -> reply Moira.Mr_err.perm []
      | [] -> reply Moira.Mr_err.args [])

let serve ?(token = "krb") host =
  let t = { host; token; scripts = Hashtbl.create 7 } in
  Netsim.Host.register host ~service:service_name (fun ~src:_ payload ->
      handle t payload);
  t

let register_script t ~name script = Hashtbl.replace t.scripts name script

let install_files host ~dir ?(after = fun () -> ()) () ~staged =
  let fs = Netsim.Host.fs host in
  match Netsim.Vfs.read fs ~path:staged with
  | None -> Error ("no staged archive at " ^ staged)
  | Some archive -> (
      match Tarlike.unpack archive with
      | Error e -> Error e
      | Ok members ->
          (* Extract and swap one member at a time; renames are atomic
             and same-partition, per the execution-phase rules. *)
          List.iter
            (fun (name, contents) ->
              let live = dir ^ "/" ^ name in
              (* keep the previous version for the revert instruction *)
              (match Netsim.Vfs.read fs ~path:live with
              | Some old ->
                  Netsim.Vfs.write fs ~path:(live ^ ".moira_old") old
              | None -> ());
              let tmp = live ^ staged_suffix in
              Netsim.Vfs.write fs ~path:tmp contents;
              Netsim.Vfs.flush fs;
              ignore (Netsim.Vfs.rename fs ~src:tmp ~dst:live);
              Netsim.Host.maybe_crash host ~point:"mid_install")
            members;
          Netsim.Vfs.remove fs ~path:staged;
          Netsim.Vfs.flush fs;
          Netsim.Host.maybe_crash host ~point:"before_restart";
          after ();
          Ok ())

let revert_files host ~dir ?(after = fun () -> ()) () ~staged =
  let fs = Netsim.Host.fs host in
  match Netsim.Vfs.read fs ~path:staged with
  | None -> Error ("no staged archive at " ^ staged)
  | Some archive -> (
      match Tarlike.unpack archive with
      | Error e -> Error e
      | Ok members ->
          List.iter
            (fun (name, _) ->
              let live = dir ^ "/" ^ name in
              ignore
                (Netsim.Vfs.rename fs ~src:(live ^ ".moira_old") ~dst:live))
            members;
          Netsim.Vfs.flush fs;
          after ();
          Ok ())

type failure =
  | Soft of int * string
  | Hard of int * string

let push net ~src ~dst ?(token = "krb") ~target ~files ~script () =
  let call op args =
    let payload =
      Gdb.Wire.encode_request
        {
          Gdb.Wire.version = Gdb.Wire.protocol_version;
          conn = 0;
          op;
          args = token :: args;
        }
    in
    match Netsim.Net.call net ~src ~dst ~service:service_name payload with
    | Error f ->
        Error
          (Soft
             ( (match f with
               | Netsim.Net.Host_down | Netsim.Net.No_host ->
                   Moira.Mr_err.host_unreachable
               | _ -> Moira.Mr_err.update_timeout),
               Netsim.Net.failure_to_string f ))
    | Ok raw -> (
        match Gdb.Wire.decode_reply raw with
        | Error e -> Error (Soft (Moira.Mr_err.aborted, e))
        | Ok reply ->
            if reply.Gdb.Wire.code = 0 then Ok reply.Gdb.Wire.tuples
            else if reply.Gdb.Wire.code = Moira.Mr_err.update_checksum then
              Error (Soft (reply.Gdb.Wire.code, "checksum mismatch"))
            else if reply.Gdb.Wire.code = Moira.Mr_err.perm then
              Error (Hard (reply.Gdb.Wire.code, "authentication rejected"))
            else
              let detail =
                match reply.Gdb.Wire.tuples with
                | [ [ msg ] ] -> msg
                | _ -> Comerr.Com_err.error_message reply.Gdb.Wire.code
              in
              Error (Hard (reply.Gdb.Wire.code, detail)))
  in
  let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e in
  let archive = Tarlike.pack files in
  let cksum = Checksum.to_hex (Checksum.adler32 archive) in
  let* _ = call op_xfer [ target; archive; cksum ] in
  let* _ = call op_script [ script ] in
  let* _ = call op_flush [] in
  let* _ = call op_exec [ target ] in
  Ok ()
