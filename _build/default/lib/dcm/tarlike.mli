(** The archive format used for multi-file transfers: "only one file is
    transferred, although it may be a tar file containing many more"
    (paper section 5.9).  A simple counted-entry archive: each member is
    a name and contents. *)

val pack : (string * string) list -> string
(** Archive a list of (name, contents) members. *)

val unpack : string -> ((string * string) list, string) result
(** Recover the members; [Error] describes the corruption. *)

val member : string -> string -> string option
(** [member archive name] extracts one member without unpacking the rest
    — the staged extraction of the execution phase ("only the ones that
    are needed are extracted one at a time"). *)
