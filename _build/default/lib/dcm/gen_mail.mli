(** The Mail generator (paper section 5.8.2): the sendmail aliases file
    (mailing lists plus per-user pobox forwarding) and a complete
    /etc/passwd for the mail hub's finger server. *)

val generator : Gen.t
(** service "MAIL". *)
