(** The Zephyr generator (paper section 5.8.2): one [<class>.acl] file
    per controlled class, holding the transmit ACL membership with
    recursive lists expanded; [*.*@*] for unrestricted (NONE) ACEs. *)

val generator : Gen.t
(** service "ZEPHYR". *)
