(** The generator framework.

    A generator is the per-service sub-program the DCM runs to extract
    Moira data into server-specific files (paper section 5.7.1).  Each
    declares which relations it reads, so the DCM can implement the
    "common error MR_NO_CHANGE": files are rebuilt only if the watched
    data changed since the last generation. *)

type watch = {
  wtable : string;  (** Relation name. *)
  wcolumns : string list;
      (** Modtime-carrying columns to scan.  Empty means use the table's
          stats modtime instead (safe only for relations the DCM itself
          never touches). *)
}

type output = {
  common : (string * string) list;
      (** Files identical on every target host (e.g. hesiod's eleven). *)
  per_host : (string * (string * string) list) list;
      (** Machine name to its private files (e.g. NFS quota files). *)
}

type t = {
  service : string;  (** Service name (upper case), e.g. "HESIOD". *)
  watches : watch list;  (** Change-detection inputs. *)
  generate : Moira.Glue.t -> output;  (** The extraction itself. *)
}

val watch : ?columns:string list -> string -> watch
(** Convenience constructor; [columns] defaults to [["modtime"]]. *)

val changed_since : Moira.Mdb.t -> watch list -> int -> bool
(** Has any watched relation changed strictly after time [t0]?  A
    relation counts as changed when some row's watched column exceeds
    [t0], when its stats deletion time exceeds [t0], or — for empty
    [wcolumns] — when its stats modtime exceeds [t0]. *)

val files_for_host : output -> machine:string -> (string * string) list
(** The file set one target host receives: the common files plus its
    per-host files. *)

val total_bytes : output -> int
(** Sum of all generated file sizes (per-host files counted once). *)
