open Relation

type watch = {
  wtable : string;
  wcolumns : string list;
}

type output = {
  common : (string * string) list;
  per_host : (string * (string * string) list) list;
}

type t = {
  service : string;
  watches : watch list;
  generate : Moira.Glue.t -> output;
}

let watch ?(columns = [ "modtime" ]) wtable = { wtable; wcolumns = columns }

let table_changed mdb w t0 =
  let tbl = Moira.Mdb.table mdb w.wtable in
  let stats = Table.stats tbl in
  if stats.Table.del_time > t0 then true
  else if w.wcolumns = [] then stats.Table.modtime > t0
  else
    Table.fold tbl ~init:false ~f:(fun acc _ row ->
        acc
        || List.exists
             (fun col -> Value.int (Table.field tbl row col) > t0)
             w.wcolumns)

let changed_since mdb watches t0 =
  List.exists (fun w -> table_changed mdb w t0) watches

let files_for_host output ~machine =
  output.common
  @ Option.value (List.assoc_opt machine output.per_host) ~default:[]

let total_bytes output =
  let sum files =
    List.fold_left (fun acc (_, c) -> acc + String.length c) 0 files
  in
  sum output.common
  + List.fold_left (fun acc (_, files) -> acc + sum files) 0 output.per_host
