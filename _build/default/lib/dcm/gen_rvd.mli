(** The RVD generator (optional service, like KLOGIN): builds each RVD
    server's pack database ([/etc/rvddb], one ["pack mode"] line per
    exported pack) from the filesys relation's RVD rows.  Installing it
    and rebooting — or signalling — the server is exactly the §5.9
    "RVD database is sent to the server upon booting" pattern. *)

val generator : Gen.t
(** service "RVD". *)
