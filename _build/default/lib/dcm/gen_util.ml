open Relation

let short_host name =
  let name = String.lowercase_ascii name in
  match String.index_opt name '.' with
  | Some i -> String.sub name 0 i
  | None -> name

let active_users mdb f =
  let tbl = Moira.Mdb.table mdb "users" in
  List.iter
    (fun (_, row) -> f row)
    (Table.select tbl (Pred.eq_int "status" 1))

let ufield mdb row col =
  Table.field (Moira.Mdb.table mdb "users") row col

let group_pairs mdb ~users_id ~login =
  let lists_tbl = Moira.Mdb.table mdb "list" in
  let group_info list_id =
    match Moira.Lookup.list_row mdb list_id with
    | Some row
      when Value.bool (Table.field lists_tbl row "grouplist")
           && Value.bool (Table.field lists_tbl row "active") ->
        Some
          ( Value.str (Table.field lists_tbl row "name"),
            Value.int (Table.field lists_tbl row "gid") )
    | _ -> None
  in
  let all =
    Moira.Acl.containing_lists mdb ~mtype:"USER" ~mid:users_id
    |> List.filter_map group_info
  in
  let own, rest = List.partition (fun (name, _) -> name = login) all in
  own @ List.sort (fun (_, a) (_, b) -> Int.compare a b) rest

let sorted_lines lines =
  match List.sort String.compare lines with
  | [] -> ""
  | sorted -> String.concat "\n" sorted ^ "\n"
