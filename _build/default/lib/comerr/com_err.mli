(** The com_err error-code mechanism (Ken Raeburn's libcom_err).

    Several independent sets of error codes coexist in one program: every
    error code is an integer, and each error table reserves a subrange of
    the integers based on a hash of the (at most four character) table
    name.  By convention code [0] means success.  See paper section 5.6.1. *)

(** A registered error table. *)
type table

val create_table : name:string -> string array -> table
(** [create_table ~name messages] registers a new error table.  [name] is
    the table name (at most four characters are significant, as in the C
    implementation); [messages] are the error strings, in order.  The table
    is assigned a base code derived from hashing [name].

    @raise Invalid_argument if a table with a colliding base is already
    registered with a different name. *)

val base : table -> int
(** [base t] is the first error code of table [t]'s reserved range. *)

val table_name : table -> string
(** [table_name t] is the name [t] was registered under. *)

val code : table -> int -> int
(** [code t i] is the error code for the [i]th message of [t] (0-based).

    @raise Invalid_argument if [i] is out of range for [t]. *)

val error_message : int -> string
(** [error_message c] is the message string associated with error code [c].
    Code [0] yields ["Success"].  Codes from unregistered tables yield a
    generic ["Unknown code ..."] string, mirroring the C library. *)

val error_table_name : int -> string
(** [error_table_name c] recovers the table-name string encoded in the
    base of code [c] (the inverse of the name hash), e.g. for debugging. *)

val com_err : whoami:string -> int -> string -> unit
(** [com_err ~whoami code msg] reports an error in the standard format
    ["whoami: error_message(code) msg\n"] on [stderr], or routes it to the
    hook installed with {!set_com_err_hook}.  If [code] is zero no error
    message text is printed for the code. *)

val set_com_err_hook : (whoami:string -> int -> string -> unit) -> unit
(** Install a hook receiving all subsequent {!com_err} reports (e.g. to
    route them to a log or a dialogue box).  Returns via {!reset_com_err_hook}. *)

val reset_com_err_hook : unit -> unit
(** Remove any installed hook; {!com_err} prints to [stderr] again. *)

val registered_tables : unit -> table list
(** All currently registered tables, in registration order. *)
