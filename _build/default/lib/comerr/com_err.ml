type table = {
  name : string;
  base : int;
  messages : string array;
}

(* The C implementation packs up to four characters of the table name into
   six-bit groups (index into [char_set] plus one) and shifts the result
   left by eight bits, reserving 256 codes per table. *)
let char_set =
  "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789_"

let char_to_num c =
  match String.index_opt char_set c with
  | Some i -> i + 1
  | None -> 0

let num_to_char n =
  if n >= 1 && n <= String.length char_set then char_set.[n - 1] else '?'

let errcode_range = 8
let bits_per_char = 6

let base_of_name name =
  let n = min 4 (String.length name) in
  let rec pack acc i =
    if i >= n then acc
    else pack ((acc lsl bits_per_char) + char_to_num name.[i]) (i + 1)
  in
  pack 0 0 lsl errcode_range

let tables : (int, table) Hashtbl.t = Hashtbl.create 17
let order : table list ref = ref []

let create_table ~name messages =
  let base = base_of_name name in
  (match Hashtbl.find_opt tables base with
  | Some t when t.name <> name ->
      invalid_arg
        (Printf.sprintf "com_err: table %S collides with existing table %S"
           name t.name)
  | _ -> ());
  let t = { name; base; messages } in
  Hashtbl.replace tables base t;
  order := t :: List.filter (fun t' -> t'.base <> base) !order;
  t

let base t = t.base
let table_name t = t.name

let code t i =
  if i < 0 || i >= Array.length t.messages then
    invalid_arg
      (Printf.sprintf "com_err: code index %d out of range for table %S" i
         t.name)
  else t.base + i

let error_table_name c =
  let packed = c asr errcode_range in
  let rec unpack acc packed =
    if packed = 0 then acc
    else
      unpack
        (String.make 1 (num_to_char (packed land 0x3f)) ^ acc)
        (packed asr bits_per_char)
  in
  unpack "" packed

let error_message c =
  if c = 0 then "Success"
  else
    let b = c land lnot ((1 lsl errcode_range) - 1) in
    let offset = c land ((1 lsl errcode_range) - 1) in
    match Hashtbl.find_opt tables b with
    | Some t when offset < Array.length t.messages -> t.messages.(offset)
    | Some t ->
        Printf.sprintf "Unknown code %s %d" t.name offset
    | None ->
        if b = 0 then Printf.sprintf "Unknown error %d" c
        else Printf.sprintf "Unknown code %s %d" (error_table_name c) offset

let hook : (whoami:string -> int -> string -> unit) option ref = ref None

let com_err ~whoami code msg =
  match !hook with
  | Some f -> f ~whoami code msg
  | None ->
      if code = 0 then Printf.eprintf "%s: %s\n%!" whoami msg
      else Printf.eprintf "%s: %s %s\n%!" whoami (error_message code) msg

let set_com_err_hook f = hook := Some f
let reset_com_err_hook () = hook := None
let registered_tables () = List.rev !order
