lib/comerr/com_err.mli:
