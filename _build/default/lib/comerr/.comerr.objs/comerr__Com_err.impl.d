lib/comerr/com_err.ml: Array Hashtbl List Printf String
