(** The simulated Kerberos key-distribution centre and the client/server
    ticket exchange.

    Model: principals have password-derived keys; services have random
    srvtab keys.  A client obtains {!credentials} (a service ticket plus
    session key) by presenting a password; {!mk_req} packages a wire
    authenticator; a server's {!server_ctx} verifies it with its srvtab
    key, enforcing lifetime, clock skew and replay protection (the paper
    requires safety against "replay of transactions").

    Clients and servers in the simulation hold a direct reference to the
    KDC (the real deployment's UDP exchange with the KDC adds nothing to
    the behaviour under study); the *authenticators* exchanged between
    Moira clients and servers do travel over the simulated network. *)

type t

val create : clock:(unit -> int) -> unit -> t
(** A KDC whose notion of seconds comes from [clock]. *)

(** {1 Administration} *)

val add_principal : t -> name:string -> password:string -> (unit, int) result
(** Register a user principal.  [Error Krb_err.princ_exists] if taken. *)

val principal_exists : t -> string -> bool
(** Whether the principal is registered. *)

val reserve_principal : t -> name:string -> (unit, int) result
(** Reserve a name with no usable key yet — what the registration server
    does on [grab_login] before the password is set. *)

val set_password : t -> name:string -> password:string -> (unit, int) result
(** (Re)set a principal's key — the registration server's [set_password].
    Also activates a reserved principal. *)

val delete_principal : t -> name:string -> (unit, int) result
(** Remove a principal. *)

val register_service : t -> string -> string
(** Create (or fetch) the srvtab key for a service principal. *)

val srvtab : t -> string -> string option
(** The srvtab key for a service, if registered. *)

(** {1 Client side} *)

type credentials
(** A service ticket and its session key, held by a client. *)

val get_ticket :
  t -> principal:string -> password:string -> service:string ->
  (credentials, int) result
(** Authenticate with a password and obtain credentials for [service].
    Default ticket lifetime is 8 hours.  Errors: {!Krb_err.princ_unknown},
    {!Krb_err.bad_password}, {!Krb_err.service_unknown}. *)

val mk_req : t -> credentials -> string
(** The wire authenticator: the (service-key encrypted) ticket plus a
    (session-key encrypted) authenticator stamped with the current time. *)

val credentials_principal : credentials -> string
(** Whose credentials these are. *)

(** {1 Server side} *)

type server_ctx
(** A server's verification state: its srvtab key plus a replay cache. *)

val server_ctx : t -> service:string -> (server_ctx, int) result
(** Build the verification context for [service] (reads its srvtab).
    [Error Krb_err.service_unknown] if the service is not registered. *)

val rd_req : server_ctx -> string -> (string, int) result
(** Verify a wire authenticator; on success return the authenticated
    principal name.  Errors: {!Krb_err.bad_authenticator},
    {!Krb_err.ticket_expired}, {!Krb_err.skew}, {!Krb_err.replay}. *)
