(** A crypt(3)-style one-way hash.

    The registration database stores MIT ID numbers "encrypted using the
    UNIX C library crypt() function ... the last seven characters of the
    ID number are encrypted using the first letter of the first name and
    the first letter of the last name as the salt" (section 5.10).  We
    reproduce the interface and output shape (2-char salt prefix + 11
    hash characters over the crypt alphabet), not the DES internals. *)

val crypt : salt:string -> string -> string
(** [crypt ~salt s] is a 13-character one-way hash whose first two
    characters are the (first two characters of the) salt. *)

val crypt_mit_id : first:string -> last:string -> string -> string
(** The paper's exact recipe for hashing an MIT ID: hash the last seven
    characters of the ID (hyphens removed) with the salt built from the
    initials of the first and last names. *)
