(** A toy error-propagating chained block cipher.

    Stands in for the DES CBC ("error propagating cypher-block-chaining
    mode", paper section 5.10) used by Kerberos tickets and the
    registration protocol.  It is NOT cryptographically secure — by
    design: only the protocol behaviour matters here, i.e. (a) encryption
    round-trips under the right key, (b) decryption under a wrong key is
    detected, and (c) any corruption garbles everything after it. *)

val encrypt : key:string -> string -> string
(** Encrypt a plaintext.  The result embeds an integrity header so that
    {!decrypt} can detect a wrong key or corruption. *)

val decrypt : key:string -> string -> (string, [ `Bad_key ]) result
(** Decrypt, returning [Error `Bad_key] on wrong key or corrupt input. *)
