(** Kerberos error codes, registered as a com_err table ("krb"). *)

val table : Comerr.Com_err.table
(** The registered table. *)

val princ_unknown : int
(** Principal is not in the KDC database. *)

val bad_password : int
(** Password / key mismatch. *)

val princ_exists : int
(** Principal already registered. *)

val ticket_expired : int
(** Ticket lifetime has passed. *)

val replay : int
(** Authenticator already seen. *)

val skew : int
(** Authenticator timestamp too far from server time. *)

val service_unknown : int
(** No srvtab entry for that service. *)

val bad_authenticator : int
(** Authenticator failed to decode (wrong key or corrupt). *)

val no_ticket : int
(** Client has no ticket ("can't find ticket"). *)
