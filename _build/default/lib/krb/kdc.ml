let lifetime_sec = 8 * 3600
let max_skew_sec = 300

type principal_entry = {
  mutable key : string option; (* None = reserved, no password yet *)
}

type t = {
  clock : unit -> int;
  principals : (string, principal_entry) Hashtbl.t;
  services : (string, string) Hashtbl.t;
  mutable key_counter : int;
}

let create ~clock () =
  {
    clock;
    principals = Hashtbl.create 1024;
    services = Hashtbl.create 17;
    key_counter = 0;
  }

let derive_key password = Kcrypt.crypt ~salt:"k4" password

let add_principal t ~name ~password =
  if Hashtbl.mem t.principals name then Error Krb_err.princ_exists
  else begin
    Hashtbl.replace t.principals name { key = Some (derive_key password) };
    Ok ()
  end

let principal_exists t name = Hashtbl.mem t.principals name

let reserve_principal t ~name =
  if Hashtbl.mem t.principals name then Error Krb_err.princ_exists
  else begin
    Hashtbl.replace t.principals name { key = None };
    Ok ()
  end

let set_password t ~name ~password =
  match Hashtbl.find_opt t.principals name with
  | None -> Error Krb_err.princ_unknown
  | Some e ->
      e.key <- Some (derive_key password);
      Ok ()

let delete_principal t ~name =
  if Hashtbl.mem t.principals name then begin
    Hashtbl.remove t.principals name;
    Ok ()
  end
  else Error Krb_err.princ_unknown

let fresh_key t tag =
  t.key_counter <- t.key_counter + 1;
  Kcrypt.crypt ~salt:"sk" (Printf.sprintf "%s/%d" tag t.key_counter)

let register_service t service =
  match Hashtbl.find_opt t.services service with
  | Some key -> key
  | None ->
      let key = fresh_key t service in
      Hashtbl.replace t.services service key;
      key

let srvtab t service = Hashtbl.find_opt t.services service

type credentials = {
  principal : string;
  session_key : string;
  ticket_blob : string; (* encrypted under the service srvtab key *)
  kdc : t;
}

(* Simple counted framing for joining/splitting blobs. *)
let frame parts =
  String.concat ""
    (List.map (fun p -> Printf.sprintf "%08d%s" (String.length p) p) parts)

let unframe s =
  let n = String.length s in
  let rec go i acc =
    if i = n then Some (List.rev acc)
    else if i + 8 > n then None
    else
      match int_of_string_opt (String.sub s i 8) with
      | None -> None
      | Some len ->
          if len < 0 || i + 8 + len > n then None
          else go (i + 8 + len) (String.sub s (i + 8) len :: acc)
  in
  go 0 []

let get_ticket t ~principal ~password ~service =
  match Hashtbl.find_opt t.principals principal with
  | None -> Error Krb_err.princ_unknown
  | Some { key = None } -> Error Krb_err.bad_password
  | Some { key = Some key } ->
      if key <> derive_key password then Error Krb_err.bad_password
      else begin
        match srvtab t service with
        | None -> Error Krb_err.service_unknown
        | Some service_key ->
            let session_key = fresh_key t (principal ^ "@" ^ service) in
            let expires = t.clock () + lifetime_sec in
            let ticket_blob =
              Toycipher.encrypt ~key:service_key
                (frame [ principal; session_key; string_of_int expires ])
            in
            Ok { principal; session_key; ticket_blob; kdc = t }
      end

(* The nonce plays the role of the microsecond field of a real Kerberos
   authenticator: two requests in the same second must still differ, or
   the replay cache would reject the second. *)
let mk_req t creds =
  t.key_counter <- t.key_counter + 1;
  let authenticator =
    Toycipher.encrypt ~key:creds.session_key
      (frame
         [ creds.principal; string_of_int (t.clock ());
           string_of_int t.key_counter ])
  in
  frame [ creds.ticket_blob; authenticator ]

let credentials_principal c = c.principal

type server_ctx = {
  service_key : string;
  sclock : unit -> int;
  replay_cache : (string, unit) Hashtbl.t;
}

let server_ctx t ~service =
  match srvtab t service with
  | None -> Error Krb_err.service_unknown
  | Some service_key ->
      Ok { service_key; sclock = t.clock; replay_cache = Hashtbl.create 64 }

let rd_req ctx wire =
  match unframe wire with
  | Some [ ticket_blob; authenticator ] -> (
      match Toycipher.decrypt ~key:ctx.service_key ticket_blob with
      | Error `Bad_key -> Error Krb_err.bad_authenticator
      | Ok ticket -> (
          match unframe ticket with
          | Some [ principal; session_key; expires ] -> (
              let expires =
                Option.value (int_of_string_opt expires) ~default:0
              in
              let now = ctx.sclock () in
              if now > expires then Error Krb_err.ticket_expired
              else
                match Toycipher.decrypt ~key:session_key authenticator with
                | Error `Bad_key -> Error Krb_err.bad_authenticator
                | Ok auth -> (
                    match unframe auth with
                    | Some [ auth_principal; stamp; _nonce ] ->
                        let stamp =
                          Option.value (int_of_string_opt stamp) ~default:0
                        in
                        if auth_principal <> principal then
                          Error Krb_err.bad_authenticator
                        else if abs (now - stamp) > max_skew_sec then
                          Error Krb_err.skew
                        else if Hashtbl.mem ctx.replay_cache authenticator
                        then Error Krb_err.replay
                        else begin
                          Hashtbl.replace ctx.replay_cache authenticator ();
                          Ok principal
                        end
                    | _ -> Error Krb_err.bad_authenticator))
          | _ -> Error Krb_err.bad_authenticator))
  | _ -> Error Krb_err.bad_authenticator
