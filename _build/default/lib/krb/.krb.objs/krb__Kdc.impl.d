lib/krb/kdc.ml: Hashtbl Kcrypt Krb_err List Option Printf String Toycipher
