lib/krb/toycipher.ml: Bytes Char String
