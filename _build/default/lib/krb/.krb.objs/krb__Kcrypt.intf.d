lib/krb/kcrypt.mli:
