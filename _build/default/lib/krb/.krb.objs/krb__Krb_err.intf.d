lib/krb/krb_err.mli: Comerr
