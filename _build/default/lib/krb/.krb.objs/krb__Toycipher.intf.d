lib/krb/toycipher.mli:
