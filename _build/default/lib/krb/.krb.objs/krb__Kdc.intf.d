lib/krb/kdc.mli:
