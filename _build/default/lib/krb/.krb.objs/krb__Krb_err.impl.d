lib/krb/krb_err.ml: Comerr
