lib/krb/kcrypt.ml: Buffer Char String
