let table =
  Comerr.Com_err.create_table ~name:"krb"
    [|
      "Principal unknown to the Kerberos database";
      "Incorrect password";
      "Principal already exists";
      "Ticket expired";
      "Authenticator replayed";
      "Clock skew too great";
      "Service unknown (no srvtab entry)";
      "Can't decode authenticator";
      "Can't find ticket";
    |]

let code = Comerr.Com_err.code table
let princ_unknown = code 0
let bad_password = code 1
let princ_exists = code 2
let ticket_expired = code 3
let replay = code 4
let skew = code 5
let service_unknown = code 6
let bad_authenticator = code 7
let no_ticket = code 8
