(* Keystream chaining: each output byte mixes the key schedule with the
   previous *ciphertext* byte, so damage propagates to the end of the
   message, like DES CBC with ciphertext feedback.  A magic header makes
   wrong-key decryption detectable. *)

let magic = "KRB4"

let key_schedule key =
  let h = ref 0x3bf29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3 land max_int)
    key;
  !h

let mix state byte =
  let s = (state lxor byte) * 0x9E3779B1 land max_int in
  (s lsr 13) lxor s

let transform ~key ~decrypting s =
  let k = key_schedule key in
  let n = String.length s in
  let out = Bytes.create n in
  let state = ref k in
  for i = 0 to n - 1 do
    let p = Char.code s.[i] in
    let ks = !state land 0xff in
    let c = p lxor ks in
    Bytes.set out i (Char.chr c);
    (* chain on the ciphertext byte, whichever side produced it *)
    let cipher_byte = if decrypting then p else c in
    state := mix !state cipher_byte
  done;
  Bytes.to_string out

let encrypt ~key plain =
  transform ~key ~decrypting:false (magic ^ plain)

let decrypt ~key cipher =
  let plain = transform ~key ~decrypting:true cipher in
  let mlen = String.length magic in
  if String.length plain >= mlen && String.sub plain 0 mlen = magic then
    Ok (String.sub plain mlen (String.length plain - mlen))
  else Error `Bad_key
