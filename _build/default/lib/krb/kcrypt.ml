let alphabet =
  "./0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"

let pad_salt salt =
  match String.length salt with
  | 0 -> ".."
  | 1 -> salt ^ "."
  | _ -> String.sub salt 0 2

(* 25 chained FNV rounds over salt+input, like crypt's 25 DES iterations. *)
let crypt ~salt s =
  let salt = pad_salt salt in
  let round h input =
    let h = ref h in
    String.iter
      (fun c ->
        h := !h lxor Char.code c;
        h := !h * 0x100000001b3 land max_int)
      input;
    !h
  in
  let h = ref (round 0x3bf29ce484222325 salt) in
  for _ = 1 to 25 do
    h := round !h s;
    h := round !h salt
  done;
  let buf = Buffer.create 13 in
  Buffer.add_string buf salt;
  let v = ref !h in
  for _ = 1 to 11 do
    Buffer.add_char buf alphabet.[!v land 63];
    v := !v lsr 5
  done;
  Buffer.contents buf

let strip_hyphens s =
  String.concat "" (String.split_on_char '-' s)

let crypt_mit_id ~first ~last id =
  let id = strip_hyphens id in
  let tail =
    let n = String.length id in
    if n <= 7 then id else String.sub id (n - 7) 7
  in
  let initial s = if s = "" then "." else String.sub s 0 1 in
  crypt ~salt:(initial first ^ initial last) tail
