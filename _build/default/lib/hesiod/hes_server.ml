let db_files =
  [
    "cluster.db"; "filsys.db"; "gid.db"; "group.db"; "grplist.db";
    "passwd.db"; "pobox.db"; "printcap.db"; "service.db"; "sloc.db";
    "uid.db";
  ]

type t = {
  host : Netsim.Host.t;
  dir : string;
  mutable db : Hes_db.t;
  mutable generation : int;
}

let load t =
  let fs = Netsim.Host.fs t.host in
  let contents =
    List.filter_map
      (fun f -> Netsim.Vfs.read fs ~path:(t.dir ^ "/" ^ f))
      db_files
  in
  t.db <- Hes_db.load_files contents;
  t.generation <- t.generation + 1

let restart t = load t
let resolve_local t ~name ~ty = Hes_db.resolve t.db ~name ~ty
let loaded_keys t = Hes_db.size t.db
let generation t = t.generation

let start ~dir host =
  let t = { host; dir; db = Hes_db.empty; generation = 0 } in
  load t;
  Netsim.Host.register host ~service:"hesiod" (fun ~src:_ payload ->
      match String.index_opt payload ' ' with
      | None -> ""
      | Some i ->
          let name = String.sub payload 0 i in
          let ty =
            String.sub payload (i + 1) (String.length payload - i - 1)
          in
          String.concat "\n" (resolve_local t ~name ~ty));
  Netsim.Host.on_boot host (fun _ -> load t);
  t

let resolve net ~src ~server ~name ~ty =
  match
    Netsim.Net.call net ~src ~dst:server ~service:"hesiod" (name ^ " " ^ ty)
  with
  | Ok "" -> Ok []
  | Ok reply -> Ok (String.split_on_char '\n' reply)
  | Error f -> Error f
