lib/hesiod/hes_server.ml: Hes_db List Netsim String
