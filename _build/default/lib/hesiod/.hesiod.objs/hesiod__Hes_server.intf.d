lib/hesiod/hes_server.mli: Netsim
