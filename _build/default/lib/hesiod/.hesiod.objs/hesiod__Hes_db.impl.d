lib/hesiod/hes_db.ml: List Map Option Printf String
