lib/hesiod/hes_db.mli:
