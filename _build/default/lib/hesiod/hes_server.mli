(** The Hesiod name server substrate.

    Lives on a simulated host; loads the eleven Moira-generated [*.db]
    files from that host's filesystem into memory at start and on every
    restart (the paper: "the server automatically loads the files from
    disk into memory when it is started"; Moira's install script kills
    and restarts it to pick up new data).  Answers lookups over the
    network service ["hesiod"] with a [name ty] request and one reply
    line per matching record. *)

val db_files : string list
(** The eleven file basenames, as in section 5.8.2: cluster.db,
    filsys.db, gid.db, group.db, grplist.db, passwd.db, pobox.db,
    printcap.db, service.db, sloc.db, uid.db. *)

type t

val start : dir:string -> Netsim.Host.t -> t
(** Start a server on the host, reading [dir^"/"^file] for every
    {!db_files} entry present.  Registers the ["hesiod"] network service
    and a boot hook that reloads the files. *)

val restart : t -> unit
(** Reload data files from disk (what Moira's install script triggers). *)

val resolve_local : t -> name:string -> ty:string -> string list
(** In-process lookup against the currently loaded data. *)

val loaded_keys : t -> int
(** Number of keys currently in memory. *)

val generation : t -> int
(** How many times the server has (re)loaded its files. *)

(** {1 Client side} *)

val resolve :
  Netsim.Net.t -> src:string -> server:string -> name:string -> ty:string ->
  (string list, Netsim.Net.failure) result
(** A remote [hes_resolve]: ask the hesiod server on host [server]. *)
