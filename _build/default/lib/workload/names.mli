(** Deterministic synthetic people and hostnames. *)

type person = {
  first : string;
  middle : string;
  last : string;
  login : string;  (** Unique within one generator. *)
  id_number : string;  (** Nine digits, hyphenated. *)
}

type t

val create : Sim.Rng.t -> t
(** A name generator drawing from the given RNG stream. *)

val person : t -> person
(** A fresh person with a unique login. *)

val hostname : t -> prefix:string -> string
(** A fresh uppercase hostname like "W20-042.MIT.EDU". *)
