(** Synthetic Athena population builder.

    Loads a database — through the ordinary query handles — with a
    campus shaped like the paper's assumptions (section 5.1): about
    10,000 active users each with a pobox, a personal unix group, a home
    filesystem and a quota; 20 NFS servers; one hesiod server and one
    mail hub; a handful of zephyr servers and classes; clusters,
    printers and network services. *)

type spec = {
  users : int;  (** Active users (paper: 10,000). *)
  unregistered : int;  (** Registrar-tape stubs not yet registered. *)
  nfs_servers : int;  (** Paper: 20. *)
  partitions_per_server : int;  (** NFS partitions per server. *)
  pop_servers : int;  (** Post offices. *)
  hesiod_servers : int;  (** Paper: 1. *)
  zephyr_servers : int;  (** Paper: several; class files go to each. *)
  zephyr_classes : int;  (** Paper: 6. *)
  maillists : int;  (** Shared mailing lists. *)
  course_groups : int;  (** Course unix groups. *)
  clusters : int;
  workstations : int;
  printers : int;
  network_services : int;
  members_per_list : int;  (** Mean members per mailing list / group. *)
  seed : int;
}

val default : spec
(** The paper-scale campus: 10,000 users, 20 NFS servers, etc. *)

val small : spec
(** A scaled-down campus for unit tests (60 users, 3 NFS servers). *)

val scaled : spec -> float -> spec
(** [scaled s f] multiplies the population-proportional knobs by [f]. *)

type built = {
  spec : spec;
  admin : string;  (** Login of the all-powerful admin user. *)
  admin_password : string;
  logins : string array;  (** Every active user login, in creation order. *)
  passwords : (string -> string);  (** Deterministic password of a login. *)
  maillist_names : string array;
  group_names : string array;  (** Course group names. *)
  nfs_machines : string array;
  pop_machines : string array;
  hesiod_machines : string array;
  zephyr_machines : string array;
  mail_hub : string;
  moira_machine : string;
  workstation_machines : string array;
}

val machines_of : spec -> built -> string list
(** Every server machine a DCM update can target (deduplicated). *)

val build :
  glue:Moira.Glue.t -> kdc:Krb.Kdc.t -> spec -> built
(** Populate the database and the KDC.  The admin user and the
    ["moira-admins"] list are created first and every query handle's
    capability ACL is pointed at that list.

    @raise Failure if any build query unexpectedly fails. *)
