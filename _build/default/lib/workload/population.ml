type spec = {
  users : int;
  unregistered : int;
  nfs_servers : int;
  partitions_per_server : int;
  pop_servers : int;
  hesiod_servers : int;
  zephyr_servers : int;
  zephyr_classes : int;
  maillists : int;
  course_groups : int;
  clusters : int;
  workstations : int;
  printers : int;
  network_services : int;
  members_per_list : int;
  seed : int;
}

let default =
  {
    users = 10_000;
    unregistered = 500;
    nfs_servers = 20;
    partitions_per_server = 1;
    pop_servers = 2;
    hesiod_servers = 1;
    zephyr_servers = 3;
    zephyr_classes = 6;
    maillists = 200;
    course_groups = 80;
    clusters = 40;
    workstations = 1000;
    printers = 40;
    network_services = 120;
    members_per_list = 18;
    seed = 7;
  }

let small =
  {
    users = 60;
    unregistered = 10;
    nfs_servers = 3;
    partitions_per_server = 2;
    pop_servers = 2;
    hesiod_servers = 1;
    zephyr_servers = 2;
    zephyr_classes = 3;
    maillists = 8;
    course_groups = 5;
    clusters = 3;
    workstations = 10;
    printers = 4;
    network_services = 8;
    members_per_list = 6;
    seed = 7;
  }

let scaled s f =
  let m x = max 1 (int_of_float (float_of_int x *. f)) in
  {
    s with
    users = m s.users;
    unregistered = m s.unregistered;
    maillists = m s.maillists;
    course_groups = m s.course_groups;
    workstations = m s.workstations;
  }

type built = {
  spec : spec;
  admin : string;
  admin_password : string;
  logins : string array;
  passwords : string -> string;
  maillist_names : string array;
  group_names : string array;
  nfs_machines : string array;
  pop_machines : string array;
  hesiod_machines : string array;
  zephyr_machines : string array;
  mail_hub : string;
  moira_machine : string;
  workstation_machines : string array;
}

let machines_of _spec b =
  List.sort_uniq String.compare
    (Array.to_list b.nfs_machines
    @ Array.to_list b.pop_machines
    @ Array.to_list b.hesiod_machines
    @ Array.to_list b.zephyr_machines
    @ [ b.mail_hub; b.moira_machine ])

let password_of login = "pw-" ^ login

(* Every build step goes through a query handle; a failure here is a bug
   in the builder, so fail loudly. *)
let must glue name args =
  match Moira.Glue.query glue ~name args with
  | Ok tuples -> tuples
  | Error code ->
      failwith
        (Printf.sprintf "population: %s(%s) failed: %s" name
           (String.concat ", " args)
           (Comerr.Com_err.error_message code))

let classes = [| "1989"; "1990"; "1991"; "1992"; "G" |]

let build ~glue ~kdc spec =
  let rng = Sim.Rng.create spec.seed in
  let names = Names.create (Sim.Rng.split rng) in
  let mdb = Moira.Glue.mdb glue in

  (* --- machines --- *)
  let moira_machine = "MOIRA.MIT.EDU" in
  let mail_hub = "ATHENA.MIT.EDU" in
  let mk_hosts n prefix =
    Array.init n (fun i -> Printf.sprintf "%s-%d.MIT.EDU" prefix (i + 1))
  in
  let hesiod_machines =
    if spec.hesiod_servers = 1 then [| "SUOMI.MIT.EDU" |]
    else mk_hosts spec.hesiod_servers "HESIOD"
  in
  let nfs_machines = mk_hosts spec.nfs_servers "NFS" in
  let pop_machines = mk_hosts spec.pop_servers "ATHENA-PO" in
  let zephyr_machines = mk_hosts spec.zephyr_servers "ZEPHYR" in
  let workstation_machines =
    Array.init spec.workstations (fun _ -> Names.hostname names ~prefix:"W20")
  in
  let all_machines =
    [ moira_machine; mail_hub ]
    @ Array.to_list hesiod_machines
    @ Array.to_list nfs_machines
    @ Array.to_list pop_machines
    @ Array.to_list zephyr_machines
    @ Array.to_list workstation_machines
  in
  List.iter
    (fun m ->
      ignore
        (must glue "add_machine"
           [ m; (if Sim.Rng.bool rng then "VAX" else "RT") ]))
    all_machines;

  (* --- admin user and the capability ACLs --- *)
  let admin = "admin" in
  ignore
    (must glue "add_user"
       [ admin; "1000"; "/bin/csh"; "Admin"; "Athena"; ""; "1";
         "adminhash"; "STAFF" ]);
  ignore
    (must glue "add_list"
       [ "moira-admins"; "1"; "0"; "0"; "1"; "0"; "-1"; "USER"; admin;
         "Moira administrators" ]);
  ignore (must glue "add_member_to_list" [ "moira-admins"; "USER"; admin ]);
  let admins_id =
    match Moira.Lookup.list_id mdb "moira-admins" with
    | Some id -> id
    | None -> failwith "population: moira-admins vanished"
  in
  (* Point every query handle's capacl at moira-admins.  Queries that are
     safe for everybody keep access_anyone in their definition. *)
  List.iter
    (fun q ->
      Moira.Acl.set_capacl mdb ~query:q.Moira.Query.name
        ~tag:q.Moira.Query.short ~list_id:admins_id)
    (Moira.Catalog.standard ());
  Moira.Acl.set_capacl mdb ~query:"trigger_dcm" ~tag:"tdcm"
    ~list_id:admins_id;
  ignore (Krb.Kdc.add_principal kdc ~name:admin ~password:(password_of admin));

  (* --- NFS partitions --- *)
  Array.iter
    (fun m ->
      for p = 1 to spec.partitions_per_server do
        ignore
          (must glue "add_nfsphys"
             [
               m;
               Printf.sprintf "/u%d/lockers" p;
               Printf.sprintf "/dev/ra%dc" p;
               string_of_int
                 (Moira.Mrconst.fs_student lor Moira.Mrconst.fs_faculty
                lor Moira.Mrconst.fs_staff lor Moira.Mrconst.fs_misc);
               "0";
               string_of_int
                 (max 120_000
                    (spec.users * 400
                    / max 1 (spec.nfs_servers * spec.partitions_per_server)));
             ])
      done)
    nfs_machines;

  (* --- services (DCM) and server/host tuples --- *)
  let add_service name interval target script ty =
    ignore
      (must glue "add_server_info"
         [ name; string_of_int interval; target; script; ty; "1"; "LIST";
           "moira-admins" ])
  in
  add_service "HESIOD" 360 "/tmp/hesiod.out" "hesiod.sh" "REPLICAT";
  add_service "NFS" 720 "/var/moira/nfs.out" "nfs.sh" "UNIQUE";
  add_service "MAIL" 1440 "/tmp/mail.out" "mail.sh" "UNIQUE";
  add_service "ZEPHYR" 1440 "/tmp/zephyr.out" "zephyr.sh" "REPLICAT";
  let add_shost service machine v1 v2 v3 =
    ignore
      (must glue "add_server_host_info"
         [ service; machine; "1"; string_of_int v1; string_of_int v2; v3 ])
  in
  Array.iter (fun m -> add_shost "HESIOD" m 0 0 "") hesiod_machines;
  Array.iter (fun m -> add_shost "NFS" m 0 0 "") nfs_machines;
  add_shost "MAIL" mail_hub 0 0 "";
  Array.iter (fun m -> add_shost "ZEPHYR" m 0 0 "") zephyr_machines;
  (* POP itself is stuffed by Moira rather than the DCM, but it needs a
     servers row so the serverhosts rows are well-formed. *)
  add_service "POP" 0 "" "" "UNIQUE";
  let pop_capacity = (spec.users / max 1 spec.pop_servers) + 64 in
  Array.iter (fun m -> add_shost "POP" m 0 pop_capacity "") pop_machines;
  (* the admin reads operational mail too *)
  ignore (must glue "set_pobox" [ admin; "POP"; pop_machines.(0) ]);

  (* --- clusters --- *)
  let cluster_names =
    Array.init spec.clusters (fun i -> Printf.sprintf "bldg%d-vs" (i + 1))
  in
  Array.iteri
    (fun i cname ->
      ignore
        (must glue "add_cluster"
           [ cname; Printf.sprintf "cluster %d" (i + 1);
             Printf.sprintf "Building %d" (i + 1) ]);
      ignore
        (must glue "add_cluster_data"
           [ cname; "zephyr"; zephyr_machines.(i mod spec.zephyr_servers) ]);
      ignore
        (must glue "add_cluster_data"
           [ cname; "syslib"; Printf.sprintf "%s-syslib" cname ]))
    cluster_names;
  Array.iteri
    (fun i w ->
      ignore
        (must glue "add_machine_to_cluster"
           [ w; cluster_names.(i mod spec.clusters) ]);
      (* a few machines live in two clusters, exercising the
         pseudo-cluster path of the hesiod generator *)
      if i mod 17 = 0 && spec.clusters > 1 then
        ignore
          (must glue "add_machine_to_cluster"
             [ w; cluster_names.((i + 1) mod spec.clusters) ]))
    workstation_machines;

  (* --- users --- *)
  let logins = Array.make spec.users "" in
  for i = 0 to spec.users - 1 do
    let p = Names.person names in
    let uid = 7000 + i in
    let hashed =
      Krb.Kcrypt.crypt_mit_id ~first:p.Names.first ~last:p.Names.last
        p.Names.id_number
    in
    ignore
      (must glue "add_user"
         [
           Moira.Mrconst.unique_login; string_of_int uid; "/bin/csh";
           p.Names.last; p.Names.first; p.Names.middle; "0"; hashed;
           classes.(i mod Array.length classes);
         ]);
    ignore
      (must glue "register_user"
         [ string_of_int uid; p.Names.login;
           string_of_int Moira.Mrconst.fs_student ]);
    ignore
      (must glue "update_user_status" [ p.Names.login; "1" ]);
    ignore
      (Krb.Kdc.add_principal kdc ~name:p.Names.login
         ~password:(password_of p.Names.login));
    logins.(i) <- p.Names.login
  done;

  (* --- registrar-tape stubs that have not registered yet --- *)
  for i = 0 to spec.unregistered - 1 do
    let p = Names.person names in
    let hashed =
      Krb.Kcrypt.crypt_mit_id ~first:p.Names.first ~last:p.Names.last
        p.Names.id_number
    in
    ignore
      (must glue "add_user"
         [
           Moira.Mrconst.unique_login;
           string_of_int (40_000 + i);
           "/bin/csh"; p.Names.last; p.Names.first; p.Names.middle; "0";
           hashed; classes.(i mod Array.length classes);
         ])
  done;

  (* --- mailing lists --- *)
  let maillist_names =
    Array.init spec.maillists (fun i -> Printf.sprintf "ml-%03d" (i + 1))
  in
  Array.iter
    (fun name ->
      let public = if Sim.Rng.chance rng 0.5 then "1" else "0" in
      ignore
        (must glue "add_list"
           [ name; "1"; public; "0"; "1"; "0"; "-1"; "LIST"; "moira-admins";
             "mailing list " ^ name ]);
      let n = 1 + Sim.Rng.int rng (2 * spec.members_per_list) in
      for _ = 1 to n do
        let member = logins.(Sim.Rng.int rng spec.users) in
        match
          Moira.Glue.query glue ~name:"add_member_to_list"
            [ name; "USER"; member ]
        with
        | Ok _ | Error _ -> () (* duplicates rejected; fine *)
      done;
      if Sim.Rng.chance rng 0.2 then
        ignore
          (must glue "add_member_to_list"
             [ name; "STRING";
               Printf.sprintf "%s@media-lab.mit.edu"
                 logins.(Sim.Rng.int rng spec.users) ]))
    maillist_names;

  (* --- course unix groups --- *)
  let group_names =
    Array.init spec.course_groups (fun i ->
        Printf.sprintf "course-%d_%03d" (6 + (i mod 3)) (i + 1))
  in
  Array.iter
    (fun name ->
      ignore
        (must glue "add_list"
           [ name; "1"; "0"; "0"; "0"; "1"; Moira.Mrconst.unique_gid;
             "LIST"; "moira-admins"; "course group " ^ name ]);
      let n = 1 + Sim.Rng.int rng (2 * spec.members_per_list) in
      for _ = 1 to n do
        let member = logins.(Sim.Rng.int rng spec.users) in
        match
          Moira.Glue.query glue ~name:"add_member_to_list"
            [ name; "USER"; member ]
        with
        | Ok _ | Error _ -> ()
      done)
    group_names;

  (* --- zephyr classes --- *)
  for i = 1 to spec.zephyr_classes do
    let cls = Printf.sprintf "zclass-%d" i in
    let xmt_list = maillist_names.(i mod Array.length maillist_names) in
    ignore
      (must glue "add_zephyr_class"
         [ cls; "LIST"; xmt_list; "NONE"; "NONE"; "NONE"; "NONE"; "NONE";
           "NONE" ])
  done;

  (* --- printers --- *)
  for i = 1 to spec.printers do
    let name = Printf.sprintf "printer-%02d" i in
    let host =
      workstation_machines.(Sim.Rng.int rng spec.workstations)
    in
    ignore
      (must glue "add_printcap"
         [ name; host; "/usr/spool/printer/" ^ name; name;
           "floor printer" ])
  done;

  (* --- network services --- *)
  List.iteri
    (fun i (name, proto, port) ->
      if i < spec.network_services then
        ignore
          (must glue "add_service"
             [ name; proto; string_of_int port; name ^ " service" ]))
    ([ ("smtp", "TCP", 25); ("qotd", "TCP", 17); ("rpc_ns", "UDP", 32767) ]
    @ List.init 64 (fun i ->
          (Printf.sprintf "svc%02d" i, (if i mod 2 = 0 then "TCP" else "UDP"),
           2000 + i)));

  {
    spec;
    admin;
    admin_password = password_of admin;
    logins;
    passwords = password_of;
    maillist_names;
    group_names;
    nfs_machines;
    pop_machines;
    hesiod_machines;
    zephyr_machines;
    mail_hub;
    moira_machine;
    workstation_machines;
  }
