(** nightly.sh (paper section 5.2.2): a cron job that dumps every
    relation to ASCII on the Moira host and "maintains the last three
    backups on line", rotating [/site/sms/backup_3 <- _2 <- _1].  The
    journal is dumped alongside so a restore can replay past the dump. *)

val backup_prefix : int -> string
(** ["/site/sms/backup_<n>/"] for n in 1..3. *)

val run_once : Testbed.t -> unit
(** Rotate the on-line backups and take a fresh dump into backup_1. *)

val install : Testbed.t -> every_hours:int -> Sim.Engine.event_id
(** Schedule {!run_once} periodically (the paper runs it nightly). *)

val generations : Testbed.t -> int
(** How many backup generations are currently on line (0–3). *)

val latest : Testbed.t -> (string * string) list
(** The relation files of backup_1 ([(name, contents)]), empty if no
    backup has been taken. *)

val latest_journal : Testbed.t -> Relation.Journal.t option
(** The journal dumped with backup_1. *)

val restore_latest : Testbed.t -> Moira.Mdb.t -> (unit, string) result
(** mrrestore: load backup_1 into a fresh database context. *)
