type person = {
  first : string;
  middle : string;
  last : string;
  login : string;
  id_number : string;
}

let firsts =
  [|
    "alice"; "bob"; "carol"; "dave"; "erin"; "frank"; "grace"; "heidi";
    "ivan"; "judy"; "karl"; "laura"; "mallory"; "nina"; "oscar"; "peggy";
    "quentin"; "ruth"; "steve"; "trudy"; "ursula"; "victor"; "wendy";
    "xavier"; "yolanda"; "zach"; "harmon"; "angela"; "gerhard"; "martin";
    "peter"; "jean"; "mark"; "ken"; "bill"; "michael";
  |]

let lasts =
  [|
    "smith"; "jones"; "brown"; "taylor"; "wilson"; "davis"; "clark";
    "hall"; "allen"; "young"; "king"; "wright"; "scott"; "green"; "baker";
    "adams"; "nelson"; "hill"; "ramirez"; "campbell"; "mitchell"; "roberts";
    "carter"; "phillips"; "evans"; "turner"; "torres"; "parker"; "collins";
    "edwards"; "stewart"; "flores"; "morris"; "nguyen"; "murphy"; "rivera";
    "fowler"; "barba"; "messmer"; "zimmermann"; "delaney"; "levine";
  |]

type t = {
  rng : Sim.Rng.t;
  mutable counter : int;
  seen_logins : (string, unit) Hashtbl.t;
  mutable host_counter : int;
}

let create rng =
  { rng; counter = 0; seen_logins = Hashtbl.create 1024; host_counter = 0 }

let cap s = String.capitalize_ascii s

let person t =
  t.counter <- t.counter + 1;
  let first = Sim.Rng.pick t.rng firsts in
  let last = Sim.Rng.pick t.rng lasts in
  let middle =
    if Sim.Rng.chance t.rng 0.4 then
      String.make 1 (Char.chr (Char.code 'a' + Sim.Rng.int t.rng 26))
      |> String.uppercase_ascii
    else ""
  in
  (* login: initials + last name fragment, disambiguated by a counter *)
  let base =
    String.sub first 0 1
    ^ (if middle = "" then "" else String.lowercase_ascii middle)
    ^ (if String.length last > 6 then String.sub last 0 6 else last)
  in
  let rec unique candidate n =
    if Hashtbl.mem t.seen_logins candidate then
      unique (Printf.sprintf "%s%d" base n) (n + 1)
    else candidate
  in
  let login = unique base 1 in
  Hashtbl.replace t.seen_logins login ();
  let id_number =
    Printf.sprintf "%03d-%02d-%04d"
      (Sim.Rng.int t.rng 900 + 100)
      (Sim.Rng.int t.rng 90 + 10)
      (t.counter mod 10000)
  in
  { first = cap first; middle; last = cap last; login; id_number }

let hostname t ~prefix =
  t.host_counter <- t.host_counter + 1;
  Printf.sprintf "%s-%03d.MIT.EDU" (String.uppercase_ascii prefix)
    t.host_counter
