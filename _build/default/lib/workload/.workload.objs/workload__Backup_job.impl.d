lib/workload/backup_job.ml: List Moira Netsim Option Population Printf Relation Sim String Testbed
