lib/workload/names.mli: Sim
