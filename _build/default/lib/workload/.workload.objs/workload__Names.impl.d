lib/workload/names.ml: Char Hashtbl Printf Sim String
