lib/workload/population.ml: Array Comerr Krb List Moira Names Printf Sim String
