lib/workload/testbed.mli: Dcm Gdb Hesiod Krb Moira Netsim Pop Population Relation Sim Userreg Zephyr
