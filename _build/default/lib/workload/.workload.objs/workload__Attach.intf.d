lib/workload/attach.mli: Netsim Rvd Testbed
