lib/workload/testbed.ml: Array Comerr Dcm Filename Hesiod Krb List Moira Netsim Option Pop Population Printf Relation Sim String Userreg Zephyr
