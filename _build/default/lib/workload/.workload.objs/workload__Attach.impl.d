lib/workload/attach.ml: Hesiod List Netsim Option Printf Rvd String Testbed
