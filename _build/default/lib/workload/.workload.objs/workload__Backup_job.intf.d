lib/workload/backup_job.mli: Moira Relation Sim Testbed
