lib/workload/population.mli: Krb Moira
