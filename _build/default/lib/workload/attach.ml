type filsys = {
  fstype : string;
  name : string;
  server : string;
  access : string;
  mount : string;
}

let parse_filsys data =
  match
    String.split_on_char ' ' data |> List.filter (fun s -> s <> "")
  with
  | [ fstype; name; server; access; mount ] ->
      Some { fstype; name; server; access; mount }
  | _ -> None

type error =
  | Unknown_locker
  | Bad_entry of string
  | Hesiod_unreachable of Netsim.Net.failure
  | Rvd_failed of Rvd.Rvd_server.spinup_error

let error_to_string = function
  | Unknown_locker -> "no such locker in hesiod"
  | Bad_entry s -> Printf.sprintf "unparseable filsys entry %S" s
  | Hesiod_unreachable f -> Netsim.Net.failure_to_string f
  | Rvd_failed Rvd.Rvd_server.No_such_pack -> "rvd: no such pack"
  | Rvd_failed Rvd.Rvd_server.Access_denied -> "rvd: access denied"
  | Rvd_failed (Rvd.Rvd_server.Unreachable f) ->
      "rvd: " ^ Netsim.Net.failure_to_string f

(* filsys.db stores the short lower-case hostname; find the full machine
   name among the simulated hosts *)
let full_hostname tb short =
  let prefix = String.uppercase_ascii short ^ "." in
  List.find_map
    (fun h ->
      let name = Netsim.Host.name h in
      if
        String.length name >= String.length prefix
        && String.sub name 0 (String.length prefix) = prefix
      then Some name
      else None)
    (Netsim.Net.hosts tb.Testbed.net)

let mtab_path = "/etc/mtab"

let attach tb ~ws ~locker =
  let hes_machine, _ = Testbed.first_hesiod tb in
  match
    Hesiod.Hes_server.resolve tb.Testbed.net ~src:ws ~server:hes_machine
      ~name:locker ~ty:"filsys"
  with
  | Error f -> Error (Hesiod_unreachable f)
  | Ok [] -> Error Unknown_locker
  | Ok (entry :: _) -> (
      match parse_filsys entry with
      | None -> Error (Bad_entry entry)
      | Some fs ->
          (* RVD lockers must be spun up on their server first *)
          let spun =
            if fs.fstype <> "RVD" then Ok ()
            else
              match full_hostname tb fs.server with
              | None -> Error (Rvd_failed Rvd.Rvd_server.No_such_pack)
              | Some server -> (
                  match
                    Rvd.Rvd_server.spinup tb.Testbed.net ~src:ws ~server
                      ~pack:fs.name ~mode:fs.access
                  with
                  | Ok () -> Ok ()
                  | Error e -> Error (Rvd_failed e))
          in
          match spun with
          | Error e -> Error e
          | Ok () ->
          let host = Testbed.host tb ws in
          let vfs = Netsim.Host.fs host in
          let line =
            Printf.sprintf "%s:%s on %s (%s,%s)" fs.server fs.name fs.mount
              fs.fstype fs.access
          in
          let existing =
            Option.value (Netsim.Vfs.read vfs ~path:mtab_path) ~default:""
          in
          Netsim.Vfs.write vfs ~path:mtab_path (existing ^ line ^ "\n");
          Netsim.Vfs.write vfs ~path:(fs.mount ^ "/.mounted") fs.server;
          Netsim.Vfs.flush vfs;
          Ok fs)

let attached tb ~ws =
  let vfs = Netsim.Host.fs (Testbed.host tb ws) in
  match Netsim.Vfs.read vfs ~path:mtab_path with
  | Some contents ->
      String.split_on_char '\n' contents |> List.filter (fun l -> l <> "")
  | None -> []
