(** The [attach] client (named in paper section 5.8.2 as the consumer of
    filsys.db): resolve a locker name through Hesiod and mount it on the
    workstation.

    Mounting is simulated by recording the mount in the workstation's
    [/etc/mtab] and creating the mount point; what matters here is the
    full consumption path — Moira database → DCM extract → hesiod file →
    hesiod resolution → parsed filesystem tuple — exactly the pipeline
    the paper's Figure 1 shows for "services which use information
    distributed from Moira". *)

type filsys = {
  fstype : string;  (** NFS or RVD. *)
  name : string;  (** Server-side directory or pack name. *)
  server : string;  (** Short server hostname (lower case). *)
  access : string;  (** Default access mode, r or w. *)
  mount : string;  (** Default client mount point. *)
}

val parse_filsys : string -> filsys option
(** Parse one filsys.db data string, e.g.
    ["NFS /u1/lockers/aab nfs-1 w /mit/aab"]. *)

type error =
  | Unknown_locker  (** Hesiod has no filsys entry of that name. *)
  | Bad_entry of string  (** The hesiod record did not parse. *)
  | Hesiod_unreachable of Netsim.Net.failure
  | Rvd_failed of Rvd.Rvd_server.spinup_error
      (** An RVD locker's spin-up was refused. *)

val error_to_string : error -> string
(** Render for diagnostics. *)

val attach :
  Testbed.t -> ws:string -> locker:string -> (filsys, error) result
(** Resolve [locker] via the testbed's first hesiod server and make it
    available on workstation [ws]: NFS lockers are recorded as mounts;
    RVD lockers are spun up on their server first (read-only unless the
    entry's default access is [w]), as the paper's attach did. *)

val attached : Testbed.t -> ws:string -> string list
(** Mount table lines currently recorded on the workstation. *)
