let backup_prefix n = Printf.sprintf "/site/sms/backup_%d/" n

let moira_fs (tb : Testbed.t) =
  Netsim.Host.fs (Testbed.host tb tb.Testbed.built.Population.moira_machine)

let files_under fs prefix =
  List.filter
    (fun path ->
      String.length path > String.length prefix
      && String.sub path 0 (String.length prefix) = prefix)
    (Netsim.Vfs.list fs)

(* Rotate: drop _3, move _2 -> _3 and _1 -> _2 (renames are atomic). *)
let rotate fs =
  List.iter
    (fun path -> Netsim.Vfs.remove fs ~path)
    (files_under fs (backup_prefix 3));
  List.iter
    (fun from_n ->
      let to_n = from_n + 1 in
      List.iter
        (fun path ->
          let base =
            String.sub path
              (String.length (backup_prefix from_n))
              (String.length path - String.length (backup_prefix from_n))
          in
          ignore
            (Netsim.Vfs.rename fs ~src:path ~dst:(backup_prefix to_n ^ base)))
        (files_under fs (backup_prefix from_n)))
    [ 2; 1 ]

let run_once (tb : Testbed.t) =
  let fs = moira_fs tb in
  rotate fs;
  Moira.Mdb.sync_tblstats tb.Testbed.mdb;
  List.iter
    (fun (name, contents) ->
      Netsim.Vfs.write fs ~path:(backup_prefix 1 ^ name) contents)
    (Relation.Backup.dump (Moira.Mdb.db tb.Testbed.mdb));
  Netsim.Vfs.write fs
    ~path:(backup_prefix 1 ^ "journal")
    (Relation.Journal.to_lines (Moira.Mdb.journal tb.Testbed.mdb));
  Netsim.Vfs.flush fs

let install tb ~every_hours =
  Sim.Engine.every tb.Testbed.engine
    ~interval:(every_hours * 3600 * 1000)
    "nightly.sh"
    (fun () -> run_once tb)

let generations tb =
  let fs = moira_fs tb in
  List.length
    (List.filter (fun n -> files_under fs (backup_prefix n) <> []) [ 1; 2; 3 ])

let latest tb =
  let fs = moira_fs tb in
  List.filter_map
    (fun path ->
      let base =
        String.sub path
          (String.length (backup_prefix 1))
          (String.length path - String.length (backup_prefix 1))
      in
      if base = "journal" then None
      else
        Option.map (fun c -> (base, c)) (Netsim.Vfs.read fs ~path))
    (files_under fs (backup_prefix 1))

let latest_journal tb =
  Option.map Relation.Journal.of_lines
    (Netsim.Vfs.read (moira_fs tb) ~path:(backup_prefix 1 ^ "journal"))

let restore_latest tb mdb =
  match latest tb with
  | [] -> Error "no backup on line"
  | files -> (
      try
        Relation.Backup.restore (Moira.Mdb.db mdb) files;
        Ok ()
      with Failure msg -> Error msg)
