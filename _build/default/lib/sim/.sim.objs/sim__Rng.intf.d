lib/sim/rng.mli:
