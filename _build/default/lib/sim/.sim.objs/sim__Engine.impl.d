lib/sim/engine.ml: Hashtbl Int Map Option Rng
