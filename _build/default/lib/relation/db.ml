type t = {
  clock : unit -> int;
  by_name : (string, Table.t) Hashtbl.t;
  mutable order : string list;  (* reverse registration order *)
}

let create ~clock = { clock; by_name = Hashtbl.create 31; order = [] }
let clock t = t.clock
let now t = t.clock ()

let add_table ?indexed t schema =
  let name = Schema.name schema in
  if Hashtbl.mem t.by_name name then
    invalid_arg (Printf.sprintf "Db.add_table: %S already exists" name);
  let table = Table.create ?indexed ~clock:t.clock schema in
  Hashtbl.replace t.by_name name table;
  t.order <- name :: t.order;
  table

let table t name =
  match Hashtbl.find_opt t.by_name name with
  | Some tbl -> tbl
  | None -> raise Not_found

let table_opt t name = Hashtbl.find_opt t.by_name name
let table_names t = List.rev t.order
let tables t = List.map (fun n -> (n, table t n)) (table_names t)
