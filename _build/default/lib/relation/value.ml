type t =
  | Int of int
  | Str of string
  | Bool of bool

type ctype = TInt | TStr | TBool

let ctype_of = function Int _ -> TInt | Str _ -> TStr | Bool _ -> TBool
let ctype_name = function TInt -> "int" | TStr -> "string" | TBool -> "bool"

let equal a b =
  match a, b with
  | Int x, Int y -> x = y
  | Str x, Str y -> String.equal x y
  | Bool x, Bool y -> x = y
  | (Int _ | Str _ | Bool _), _ -> false

let rank = function Int _ -> 0 | Str _ -> 1 | Bool _ -> 2

let compare a b =
  match a, b with
  | Int x, Int y -> Int.compare x y
  | Str x, Str y -> String.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | _ -> Int.compare (rank a) (rank b)

let to_string = function
  | Int i -> string_of_int i
  | Str s -> s
  | Bool b -> if b then "1" else "0"

let of_string ctype s =
  match ctype with
  | TStr -> Str s
  | TInt -> (
      match int_of_string_opt (String.trim s) with
      | Some i -> Int i
      | None -> failwith (Printf.sprintf "value: %S is not an integer" s))
  | TBool -> (
      match String.trim s with
      | "0" -> Bool false
      | "1" -> Bool true
      | _ -> failwith (Printf.sprintf "value: %S is not a boolean" s))

let int = function
  | Int i -> i
  | Bool b -> if b then 1 else 0
  | Str s -> invalid_arg (Printf.sprintf "Value.int: string %S" s)

let str = function
  | Str s -> s
  | Int _ | Bool _ -> invalid_arg "Value.str: not a string"

let bool = function
  | Bool b -> b
  | Int i -> i <> 0
  | Str s -> invalid_arg (Printf.sprintf "Value.bool: string %S" s)

let pp fmt = function
  | Int i -> Format.fprintf fmt "%d" i
  | Str s -> Format.fprintf fmt "%S" s
  | Bool b -> Format.fprintf fmt "%b" b
