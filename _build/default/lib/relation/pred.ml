type t =
  | True
  | Eq of string * Value.t
  | Glob of string * string
  | Glob_fold of string * string
  | Lt of string * Value.t
  | Le of string * Value.t
  | Gt of string * Value.t
  | Ge of string * Value.t
  | And of t * t
  | Or of t * t
  | Not of t

let conj = function
  | [] -> True
  | p :: ps -> List.fold_left (fun acc q -> And (acc, q)) p ps

let disj = function
  | [] -> Not True
  | p :: ps -> List.fold_left (fun acc q -> Or (acc, q)) p ps

let eq_str col s = Eq (col, Value.Str s)
let eq_int col i = Eq (col, Value.Int i)
let eq_bool col b = Eq (col, Value.Bool b)

let name_match ?(case_fold = false) col arg =
  if Glob.is_pattern arg then
    if case_fold then Glob_fold (col, arg) else Glob (col, arg)
  else if case_fold then Glob_fold (col, arg)
  else Eq (col, Value.Str arg)

let rec eval schema p tuple =
  let col c = tuple.(Schema.index_of schema c) in
  match p with
  | True -> true
  | Eq (c, v) -> Value.equal (col c) v
  | Glob (c, pat) -> Glob.matches ~pattern:pat (Value.to_string (col c))
  | Glob_fold (c, pat) ->
      Glob.matches ~case_fold:true ~pattern:pat (Value.to_string (col c))
  | Lt (c, v) -> Value.compare (col c) v < 0
  | Le (c, v) -> Value.compare (col c) v <= 0
  | Gt (c, v) -> Value.compare (col c) v > 0
  | Ge (c, v) -> Value.compare (col c) v >= 0
  | And (a, b) -> eval schema a tuple && eval schema b tuple
  | Or (a, b) -> eval schema a tuple || eval schema b tuple
  | Not a -> not (eval schema a tuple)

let rec indexable_eqs = function
  | Eq (c, v) -> [ (c, v) ]
  | And (a, b) -> indexable_eqs a @ indexable_eqs b
  | True | Glob _ | Glob_fold _ | Lt _ | Le _ | Gt _ | Ge _ | Or _ | Not _ ->
      []

let rec pp fmt = function
  | True -> Format.fprintf fmt "true"
  | Eq (c, v) -> Format.fprintf fmt "%s = %a" c Value.pp v
  | Glob (c, p) -> Format.fprintf fmt "%s ~ %S" c p
  | Glob_fold (c, p) -> Format.fprintf fmt "%s ~~ %S" c p
  | Lt (c, v) -> Format.fprintf fmt "%s < %a" c Value.pp v
  | Le (c, v) -> Format.fprintf fmt "%s <= %a" c Value.pp v
  | Gt (c, v) -> Format.fprintf fmt "%s > %a" c Value.pp v
  | Ge (c, v) -> Format.fprintf fmt "%s >= %a" c Value.pp v
  | And (a, b) -> Format.fprintf fmt "(%a && %a)" pp a pp b
  | Or (a, b) -> Format.fprintf fmt "(%a || %a)" pp a pp b
  | Not a -> Format.fprintf fmt "!(%a)" pp a
