(** Typed field values for the relational engine.

    Moira stores integers (ids, uids, unix times, booleans-as-integers in
    the wire protocol) and strings.  We keep booleans distinct in the
    engine for clarity; the Moira query layer converts to the paper's
    0/non-zero convention at the protocol boundary. *)

type t =
  | Int of int
  | Str of string
  | Bool of bool

(** Column types, used by schemas for checking. *)
type ctype = TInt | TStr | TBool

val ctype_of : t -> ctype
(** The type of a value. *)

val ctype_name : ctype -> string
(** Human-readable name of a column type. *)

val equal : t -> t -> bool
(** Structural equality. *)

val compare : t -> t -> int
(** Total order (by constructor, then payload); used for sorting results. *)

val to_string : t -> string
(** Render for protocol transmission: ints in decimal, bools as [0]/[1],
    strings verbatim. *)

val of_string : ctype -> string -> t
(** Parse a protocol string back into a value of the given type.

    @raise Failure if an [TInt]/[TBool] field does not parse. *)

val int : t -> int
(** Project an [Int] (accepts [Bool] as 0/1).
    @raise Invalid_argument on a string. *)

val str : t -> string
(** Project a [Str].  @raise Invalid_argument otherwise. *)

val bool : t -> bool
(** Project a [Bool] (accepts [Int]: zero is false, non-zero true).
    @raise Invalid_argument on a string. *)

val pp : Format.formatter -> t -> unit
(** Debug printer. *)
