type column = {
  cname : string;
  ctype : Value.ctype;
}

type t = {
  name : string;
  columns : column array;
  positions : (string, int) Hashtbl.t;
}

let make ~name cols =
  if cols = [] then invalid_arg "Schema.make: empty column list";
  let columns = Array.of_list cols in
  let positions = Hashtbl.create (Array.length columns) in
  Array.iteri
    (fun i c ->
      if Hashtbl.mem positions c.cname then
        invalid_arg
          (Printf.sprintf "Schema.make: duplicate column %S in %S" c.cname
             name);
      Hashtbl.add positions c.cname i)
    columns;
  { name; columns; positions }

let name t = t.name
let columns t = t.columns
let arity t = Array.length t.columns

let index_of t c =
  match Hashtbl.find_opt t.positions c with
  | Some i -> i
  | None -> raise Not_found

let mem t c = Hashtbl.mem t.positions c

let check_tuple t tuple =
  if Array.length tuple <> arity t then
    invalid_arg
      (Printf.sprintf "%s: tuple arity %d, expected %d" t.name
         (Array.length tuple) (arity t));
  Array.iteri
    (fun i v ->
      let expect = t.columns.(i).ctype in
      let got = Value.ctype_of v in
      (* Bool and Int interconvert freely at the protocol layer; the
         engine stores them as declared. *)
      if got <> expect then
        invalid_arg
          (Printf.sprintf "%s.%s: expected %s, got %s" t.name
             t.columns.(i).cname
             (Value.ctype_name expect)
             (Value.ctype_name got)))
    tuple

let pp fmt t =
  Format.fprintf fmt "%s(" t.name;
  Array.iteri
    (fun i c ->
      if i > 0 then Format.fprintf fmt ", ";
      Format.fprintf fmt "%s:%s" c.cname (Value.ctype_name c.ctype))
    t.columns;
  Format.fprintf fmt ")"
