(** A database: a set of named relations sharing one clock. *)

type t

val create : clock:(unit -> int) -> t
(** An empty database whose tables stamp their stats with [clock]. *)

val clock : t -> unit -> int
(** The database clock function. *)

val now : t -> int
(** Shorthand for reading the clock. *)

val add_table : ?indexed:string list -> t -> Schema.t -> Table.t
(** Create a relation from a schema and register it under the schema name.
    @raise Invalid_argument if a relation of that name already exists. *)

val table : t -> string -> Table.t
(** Look up a relation by name.
    @raise Not_found if absent. *)

val table_opt : t -> string -> Table.t option
(** Like {!table} but returning an option. *)

val tables : t -> (string * Table.t) list
(** All relations in registration order. *)

val table_names : t -> string list
(** All relation names in registration order. *)
