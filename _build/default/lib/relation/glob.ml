let is_pattern s = String.exists (fun c -> c = '*' || c = '?') s

(* Iterative glob with backtracking on the last '*': classic two-pointer
   algorithm, linear in practice and immune to pathological recursion. *)
let matches ?(case_fold = false) ~pattern s =
  let norm c = if case_fold then Char.lowercase_ascii c else c in
  let plen = String.length pattern and slen = String.length s in
  let rec go p i star_p star_i =
    if i >= slen then
      (* Consume trailing '*'s in the pattern. *)
      let rec only_stars p =
        if p >= plen then true
        else if pattern.[p] = '*' then only_stars (p + 1)
        else false
      in
      only_stars p
    else if p < plen && pattern.[p] = '*' then go (p + 1) i (p + 1) i
    else if p < plen && (pattern.[p] = '?' || norm pattern.[p] = norm s.[i])
    then go (p + 1) (i + 1) star_p star_i
    else if star_p >= 0 then go star_p (star_i + 1) star_p (star_i + 1)
    else false
  in
  go 0 0 (-1) (-1)
