(** The server's journal of successful database changes (section 5.2.2):
    the nightly ASCII dump bounds data loss to about a day; replaying the
    journal of changes made since the dump closes that gap. *)

type entry = {
  time : int;  (** Clock when the change committed. *)
  who : string;  (** Authenticated principal that made the change. *)
  query : string;  (** Query-handle name (e.g. ["update_user_shell"]). *)
  args : string list;  (** The query's arguments. *)
}

type t

val create : unit -> t
(** An empty journal. *)

val append : t -> entry -> unit
(** Record one successful change (and run any {!on_append} hooks). *)

val on_append : t -> (entry -> unit) -> unit
(** Add a hook run on every subsequent append — how the server daemon
    tees the journal to its on-disk file. *)

val entries : t -> entry list
(** All entries, oldest first. *)

val since : t -> int -> entry list
(** Entries with [time >= t0], oldest first — the replay set after
    restoring a dump taken at [t0]. *)

val length : t -> int
(** Number of entries. *)

val clear : t -> unit
(** Truncate (e.g. after a successful dump). *)

val to_lines : t -> string
(** Serialize, one entry per line in the backup escape format:
    [time:who:query:arg1:...:argN]. *)

val of_lines : string -> t
(** Parse back what {!to_lines} produced.
    @raise Failure on malformed input. *)

val replay : t -> since:int -> f:(entry -> unit) -> int
(** Apply [f] to every entry at or after [since]; returns how many were
    replayed. *)
