(** mrbackup / mrrestore: the ASCII database dump of paper section 5.2.2.

    Each relation becomes one text file; each row one line of
    colon-separated fields.  Colons and backslashes inside fields are
    escaped as [\:] and [\\]; non-printing characters become [\nnn] with
    [nnn] the octal ASCII code.  The dump is the authoritative recovery
    path: the paper distrusts INGRES's binary checkpoints and recreates
    the database from these text files. *)

val escape_field : string -> string
(** Escape one field for the dump format. *)

val unescape_field : string -> string
(** Inverse of {!escape_field}.
    @raise Failure on a malformed escape. *)

val encode_row : string list -> string
(** One row — escaped fields joined with [:] (no trailing newline). *)

val decode_row : string -> string list
(** Split a dump line back into raw fields.
    @raise Failure on a malformed escape. *)

val dump_table : Table.t -> string
(** The full dump file for one relation: one line per row, rows in rowid
    order, each line newline-terminated. *)

val dump : Db.t -> (string * string) list
(** [(relation_name, file_contents)] for every relation, in registration
    order — what [mrbackup] writes under its backup prefix. *)

val dump_size : Db.t -> int
(** Total bytes of a dump (the paper quotes ~3.2 MB for the full db). *)

val restore_table : Table.t -> string -> int
(** [restore_table t file] clears [t] and loads every line of [file] into
    it, converting fields by the schema's column types.  Returns the
    number of rows loaded.

    @raise Failure on arity mismatch or unparseable field. *)

val restore : Db.t -> (string * string) list -> unit
(** Load a full dump into an initialized (schema-created) database,
    clearing each named relation first — what [mrrestore] does into the
    freshly created [smstemp] database.  Files naming unknown relations
    raise [Failure]. *)
