let printable c = c >= ' ' && c < '\x7f'

let escape_field s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | ':' -> Buffer.add_string buf "\\:"
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when printable c -> Buffer.add_char buf c
      | c -> Buffer.add_string buf (Printf.sprintf "\\%03o" (Char.code c)))
    s;
  Buffer.contents buf

let unescape_field s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then ()
    else if s.[i] <> '\\' then begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
    else if i + 1 >= n then failwith "backup: dangling backslash"
    else
      match s.[i + 1] with
      | ':' ->
          Buffer.add_char buf ':';
          go (i + 2)
      | '\\' ->
          Buffer.add_char buf '\\';
          go (i + 2)
      | '0' .. '7' ->
          if i + 3 >= n then failwith "backup: truncated octal escape"
          else begin
            let octal = String.sub s (i + 1) 3 in
            let code =
              try int_of_string ("0o" ^ octal)
              with Failure _ ->
                failwith (Printf.sprintf "backup: bad octal escape \\%s" octal)
            in
            if code > 255 then
              failwith (Printf.sprintf "backup: octal escape \\%s > 255" octal);
            Buffer.add_char buf (Char.chr code);
            go (i + 4)
          end
      | c -> failwith (Printf.sprintf "backup: bad escape \\%c" c)
  in
  go 0;
  Buffer.contents buf

let encode_row fields = String.concat ":" (List.map escape_field fields)

(* Split on unescaped colons, then unescape each field. *)
let decode_row line =
  let n = String.length line in
  let fields = ref [] in
  let start = ref 0 in
  let i = ref 0 in
  while !i < n do
    if line.[!i] = '\\' then i := !i + 2
    else if line.[!i] = ':' then begin
      fields := String.sub line !start (!i - !start) :: !fields;
      incr i;
      start := !i
    end
    else incr i
  done;
  fields := String.sub line !start (n - !start) :: !fields;
  List.rev_map unescape_field !fields

let dump_table t =
  let buf = Buffer.create 4096 in
  Table.fold t ~init:() ~f:(fun () _ row ->
      let fields =
        Array.to_list (Array.map Value.to_string row)
      in
      Buffer.add_string buf (encode_row fields);
      Buffer.add_char buf '\n');
  Buffer.contents buf

let dump db =
  List.map (fun (name, t) -> (name, dump_table t)) (Db.tables db)

let dump_size db =
  List.fold_left (fun acc (_, s) -> acc + String.length s) 0 (dump db)

let restore_table t file =
  Table.clear t;
  let schema = Table.schema t in
  let cols = Schema.columns schema in
  let lines = String.split_on_char '\n' file in
  let loaded = ref 0 in
  List.iter
    (fun line ->
      if line <> "" then begin
        let fields = decode_row line in
        if List.length fields <> Array.length cols then
          failwith
            (Printf.sprintf "backup: %s: row has %d fields, expected %d"
               (Schema.name schema) (List.length fields) (Array.length cols));
        let row =
          Array.of_list
            (List.mapi
               (fun i f -> Value.of_string cols.(i).Schema.ctype f)
               fields)
        in
        ignore (Table.insert t row);
        incr loaded
      end)
    lines;
  !loaded

let restore db files =
  List.iter
    (fun (name, contents) ->
      match Db.table_opt db name with
      | Some t -> ignore (restore_table t contents)
      | None -> failwith (Printf.sprintf "backup: unknown relation %S" name))
    files
