lib/relation/pred.mli: Format Schema Value
