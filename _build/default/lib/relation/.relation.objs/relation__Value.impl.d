lib/relation/value.ml: Bool Format Int Printf String
