lib/relation/db.mli: Schema Table
