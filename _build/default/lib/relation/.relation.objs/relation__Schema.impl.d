lib/relation/schema.ml: Array Format Hashtbl Printf Value
