lib/relation/glob.mli:
