lib/relation/journal.mli:
