lib/relation/db.ml: Hashtbl List Printf Schema Table
