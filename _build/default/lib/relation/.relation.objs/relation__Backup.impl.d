lib/relation/backup.ml: Array Buffer Char Db List Printf Schema String Table Value
