lib/relation/lock.mli:
