lib/relation/pred.ml: Array Format Glob List Schema Value
