lib/relation/lock.ml: Hashtbl List Option
