lib/relation/table.ml: Array Hashtbl Int List Option Pred Schema Set Value
