lib/relation/backup.mli: Db Table
