lib/relation/table.mli: Pred Schema Value
