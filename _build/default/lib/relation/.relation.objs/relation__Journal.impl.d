lib/relation/journal.ml: Backup Buffer List String
