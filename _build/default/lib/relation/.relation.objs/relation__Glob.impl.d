lib/relation/glob.ml: Char String
