(** Wildcard ("glob") matching for query arguments.

    Moira's retrieval queries accept [*] (match any run of characters)
    and [?] (match any single character) in name arguments, in the style
    of INGRES pattern matching. *)

val is_pattern : string -> bool
(** [is_pattern s] is true when [s] contains an unescaped wildcard. *)

val matches : ?case_fold:bool -> pattern:string -> string -> bool
(** [matches ~pattern s] tests [s] against [pattern].  [*] matches zero or
    more characters, [?] matches exactly one.  With [case_fold] (default
    [false]) matching ignores ASCII case — used for machine and service
    names, which Moira stores upper-case. *)
