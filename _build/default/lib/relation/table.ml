type rowid = int

type stats = {
  mutable appends : int;
  mutable updates : int;
  mutable deletes : int;
  mutable modtime : int;
  mutable del_time : int;
}

module Int_set = Set.Make (Int)

type index = {
  col : int;
  buckets : (string, Int_set.t) Hashtbl.t;
}

type t = {
  schema : Schema.t;
  rows : (rowid, Value.t array) Hashtbl.t;
  mutable next_id : rowid;
  indexes : index list;  (* one per indexed column *)
  stats : stats;
  clock : unit -> int;
}

let create ?(indexed = []) ~clock schema =
  let indexes =
    List.map
      (fun cname ->
        { col = Schema.index_of schema cname; buckets = Hashtbl.create 64 })
      indexed
  in
  {
    schema;
    rows = Hashtbl.create 64;
    next_id = 0;
    indexes;
    stats = { appends = 0; updates = 0; deletes = 0; modtime = 0; del_time = 0 };
    clock;
  }

let schema t = t.schema

let key_of v = Value.to_string v

let index_add t id row =
  List.iter
    (fun ix ->
      let k = key_of row.(ix.col) in
      let set =
        Option.value (Hashtbl.find_opt ix.buckets k) ~default:Int_set.empty
      in
      Hashtbl.replace ix.buckets k (Int_set.add id set))
    t.indexes

let index_remove t id row =
  List.iter
    (fun ix ->
      let k = key_of row.(ix.col) in
      match Hashtbl.find_opt ix.buckets k with
      | None -> ()
      | Some set ->
          let set = Int_set.remove id set in
          if Int_set.is_empty set then Hashtbl.remove ix.buckets k
          else Hashtbl.replace ix.buckets k set)
    t.indexes

let touch t = t.stats.modtime <- t.clock ()

let insert t row =
  Schema.check_tuple t.schema row;
  let id = t.next_id in
  t.next_id <- id + 1;
  Hashtbl.replace t.rows id (Array.copy row);
  index_add t id row;
  t.stats.appends <- t.stats.appends + 1;
  touch t;
  id

(* Candidate rowids for a predicate: the smallest index bucket among the
   top-level equality conjuncts on indexed columns, or None for full scan. *)
let candidates t pred =
  let eqs = Pred.indexable_eqs pred in
  List.fold_left
    (fun best (cname, v) ->
      match
        List.find_opt
          (fun ix ->
            try ix.col = Schema.index_of t.schema cname
            with Not_found -> false)
          t.indexes
      with
      | None -> best
      | Some ix ->
          let set =
            Option.value
              (Hashtbl.find_opt ix.buckets (key_of v))
              ~default:Int_set.empty
          in
          (match best with
          | Some s when Int_set.cardinal s <= Int_set.cardinal set -> best
          | _ -> Some set))
    None eqs

let matching t pred =
  match candidates t pred with
  | Some set ->
      Int_set.fold
        (fun id acc ->
          match Hashtbl.find_opt t.rows id with
          | Some row when Pred.eval t.schema pred row -> (id, row) :: acc
          | _ -> acc)
        set []
      |> List.rev
  | None ->
      let acc =
        Hashtbl.fold
          (fun id row acc ->
            if Pred.eval t.schema pred row then (id, row) :: acc else acc)
          t.rows []
      in
      List.sort (fun (a, _) (b, _) -> Int.compare a b) acc

let select t pred =
  List.map (fun (id, row) -> (id, Array.copy row)) (matching t pred)

let select_one t pred =
  match matching t pred with
  | [ (id, row) ] -> Some (id, Array.copy row)
  | _ -> None

let count t pred = List.length (matching t pred)
let exists t pred = matching t pred <> []

let update t pred f =
  let hits = matching t pred in
  List.iter
    (fun (id, row) ->
      let row' = f (Array.copy row) in
      Schema.check_tuple t.schema row';
      index_remove t id row;
      Hashtbl.replace t.rows id row';
      index_add t id row';
      t.stats.updates <- t.stats.updates + 1)
    hits;
  if hits <> [] then touch t;
  List.length hits

let set_fields t pred fields =
  let positions =
    List.map (fun (c, v) -> (Schema.index_of t.schema c, v)) fields
  in
  update t pred (fun row ->
      List.iter (fun (i, v) -> row.(i) <- v) positions;
      row)

let delete t pred =
  let hits = matching t pred in
  List.iter
    (fun (id, row) ->
      index_remove t id row;
      Hashtbl.remove t.rows id;
      t.stats.deletes <- t.stats.deletes + 1)
    hits;
  if hits <> [] then begin
    touch t;
    t.stats.del_time <- t.clock ()
  end;
  List.length hits

let get t id = Option.map Array.copy (Hashtbl.find_opt t.rows id)
let cardinal t = Hashtbl.length t.rows

let fold t ~init ~f =
  List.fold_left (fun acc (id, row) -> f acc id (Array.copy row)) init
    (matching t Pred.True)

let stats t = t.stats

let clear t =
  if Hashtbl.length t.rows > 0 then t.stats.del_time <- t.clock ();
  t.stats.deletes <- t.stats.deletes + Hashtbl.length t.rows;
  Hashtbl.reset t.rows;
  List.iter (fun ix -> Hashtbl.reset ix.buckets) t.indexes;
  touch t

let field t row col = row.(Schema.index_of t.schema col)
