(** Relation schemas: ordered, named, typed columns. *)

type column = {
  cname : string;  (** Column name, unique within a schema. *)
  ctype : Value.ctype;  (** Column type. *)
}

type t

val make : name:string -> column list -> t
(** [make ~name cols] builds a schema for relation [name].

    @raise Invalid_argument on duplicate column names or an empty column
    list. *)

val name : t -> string
(** Relation name. *)

val columns : t -> column array
(** The columns, in declaration order. *)

val arity : t -> int
(** Number of columns. *)

val index_of : t -> string -> int
(** [index_of t c] is the position of column [c].
    @raise Not_found if no such column. *)

val mem : t -> string -> bool
(** Whether the schema has a column of that name. *)

val check_tuple : t -> Value.t array -> unit
(** Validate a tuple's arity and per-column types.
    @raise Invalid_argument describing the first mismatch. *)

val pp : Format.formatter -> t -> unit
(** Debug printer, e.g. [users(login:string, uid:int, ...)]. *)
