(** The line-printer substrate — the consumer of printcap.db (paper
    section 5.8.2 names its clients: lpr, lpq, lprm).

    A spool host runs an lpd accepting jobs into the printer's spool
    directory; workstations find the spool host and directory by
    resolving [<printer>.pcap] through hesiod and parsing the printcap
    entry ["name:rp=<rp>:rm=<host>:sd=<dir>"]. *)

type entry = {
  name : string;  (** Printer name. *)
  rp : string;  (** Remote printer name. *)
  rm : string;  (** Spool host. *)
  sd : string;  (** Spool directory. *)
}

val parse_printcap : string -> entry option
(** Parse one printcap.db data string. *)

type t

val start : Netsim.Host.t -> t
(** Run an lpd on a spool host: service ["lpd"] accepting
    ["PRINT <rp> <user> <body>"] (spools into [<sd>/<seq>.<user>] under
    the directory announced in the request via [rp -> sd] mapping given
    at submission), and ["QUEUE <rp>"] listing the queue. *)

val jobs : t -> rp:string -> (string * string) list
(** Queued [(user, body)] jobs for a printer, oldest first. *)

(** {1 Clients} *)

type error =
  | No_such_printer  (** Hesiod has no pcap entry. *)
  | Bad_entry of string  (** Unparseable printcap data. *)
  | Spooler_unreachable of Netsim.Net.failure

val error_to_string : error -> string
(** Render for diagnostics. *)

val lpr :
  Netsim.Net.t -> hesiod:string -> src:string -> printer:string ->
  user:string -> body:string -> (entry, error) result
(** Submit a job: resolve the printer through hesiod on host [hesiod],
    send it to the spool host.  Returns the printcap entry used. *)

val lpq :
  Netsim.Net.t -> hesiod:string -> src:string -> printer:string ->
  (string list, error) result
(** List the queue (["user: first line"] per job). *)
