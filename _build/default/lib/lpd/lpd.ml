type entry = {
  name : string;
  rp : string;
  rm : string;
  sd : string;
}

(* "linus:rp=linus:rm=BLANKET.MIT.EDU:sd=/usr/spool/printer/linus" *)
let parse_printcap data =
  match String.split_on_char ':' data with
  | name :: caps ->
      let find key =
        List.find_map
          (fun cap ->
            let prefix = key ^ "=" in
            if
              String.length cap > String.length prefix
              && String.sub cap 0 (String.length prefix) = prefix
            then
              Some
                (String.sub cap (String.length prefix)
                   (String.length cap - String.length prefix))
            else None)
          caps
      in
      (match (find "rp", find "rm", find "sd") with
      | Some rp, Some rm, Some sd -> Some { name; rp; rm; sd }
      | _ -> None)
  | [] -> None

type t = {
  host : Netsim.Host.t;
  queues : (string, (string * string) list) Hashtbl.t; (* rp -> newest first *)
  mutable seq : int;
}

let jobs t ~rp =
  List.rev (Option.value (Hashtbl.find_opt t.queues rp) ~default:[])

(* wire: "PRINT rp sd user\nbody..." / "QUEUE rp" *)
let start host =
  let t = { host; queues = Hashtbl.create 7; seq = 0 } in
  Netsim.Host.register host ~service:"lpd" (fun ~src:_ payload ->
      match String.index_opt payload '\n' with
      | Some i -> (
          let header = String.sub payload 0 i in
          let body =
            String.sub payload (i + 1) (String.length payload - i - 1)
          in
          match
            String.split_on_char ' ' header
            |> List.filter (fun s -> s <> "")
          with
          | [ "PRINT"; rp; sd; user ] ->
              t.seq <- t.seq + 1;
              let existing =
                Option.value (Hashtbl.find_opt t.queues rp) ~default:[]
              in
              Hashtbl.replace t.queues rp ((user, body) :: existing);
              (* the job also lands in the spool directory on disk *)
              let fs = Netsim.Host.fs host in
              Netsim.Vfs.write fs
                ~path:(Printf.sprintf "%s/cf%03d.%s" sd t.seq user)
                body;
              Netsim.Vfs.flush fs;
              "OK"
          | _ -> "ERR")
      | None -> (
          match
            String.split_on_char ' ' payload
            |> List.filter (fun s -> s <> "")
          with
          | [ "QUEUE"; rp ] ->
              String.concat "\n"
                (List.map
                   (fun (user, body) ->
                     let first_line =
                       match String.index_opt body '\n' with
                       | Some i -> String.sub body 0 i
                       | None -> body
                     in
                     user ^ ": " ^ first_line)
                   (jobs t ~rp))
          | _ -> "ERR"));
  t

type error =
  | No_such_printer
  | Bad_entry of string
  | Spooler_unreachable of Netsim.Net.failure

let error_to_string = function
  | No_such_printer -> "no such printer in hesiod"
  | Bad_entry s -> Printf.sprintf "unparseable printcap entry %S" s
  | Spooler_unreachable f -> Netsim.Net.failure_to_string f

let resolve_printer net ~hesiod ~src ~printer =
  match
    Hesiod.Hes_server.resolve net ~src ~server:hesiod ~name:printer
      ~ty:"pcap"
  with
  | Error f -> Error (Spooler_unreachable f)
  | Ok [] -> Error No_such_printer
  | Ok (data :: _) -> (
      match parse_printcap data with
      | Some e -> Ok e
      | None -> Error (Bad_entry data))

let lpr net ~hesiod ~src ~printer ~user ~body =
  match resolve_printer net ~hesiod ~src ~printer with
  | Error e -> Error e
  | Ok entry -> (
      let payload =
        Printf.sprintf "PRINT %s %s %s\n%s" entry.rp entry.sd user body
      in
      match Netsim.Net.call net ~src ~dst:entry.rm ~service:"lpd" payload with
      | Ok "OK" -> Ok entry
      | Ok other -> Error (Bad_entry other)
      | Error f -> Error (Spooler_unreachable f))

let lpq net ~hesiod ~src ~printer =
  match resolve_printer net ~hesiod ~src ~printer with
  | Error e -> Error e
  | Ok entry -> (
      match
        Netsim.Net.call net ~src ~dst:entry.rm ~service:"lpd"
          ("QUEUE " ^ entry.rp)
      with
      | Ok "" -> Ok []
      | Ok reply -> Ok (String.split_on_char '\n' reply)
      | Error f -> Error (Spooler_unreachable f))
