lib/pop/pop_server.ml: Hashtbl List Netsim Option String
