lib/pop/mailhub.ml: Filename Hashtbl List Netsim Option Printf String
