lib/pop/pop_server.mli: Netsim
