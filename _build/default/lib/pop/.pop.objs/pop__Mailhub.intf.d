lib/pop/mailhub.mli: Netsim
