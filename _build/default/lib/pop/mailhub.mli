(** The central mail hub (ATHENA.MIT.EDU): a sendmail stand-in that
    routes with the Moira-generated /usr/lib/aliases file.

    Routing (section 5.8.2): an address is expanded through the aliases
    file — mailing lists fan out to their members, a user's pobox line
    ([user: user@ATHENA-PO-2.LOCAL]) directs delivery to a post office,
    and addresses containing [@] of other domains are recorded as
    external.  Expansion is recursive (a list member may itself be a
    list) with cycle protection.

    The hub re-reads the aliases file on every message, so a DCM
    propagation takes effect immediately — matching the paper's
    operational model where sendmail reads the installed file. *)

type t

type delivery =
  | Local of string * string  (** Delivered to (po_machine, user). *)
  | External of string  (** Left the campus (full address). *)
  | Bounced of string  (** No alias and not a known address form. *)

val start :
  aliases_path:string ->
  po_of_short:(string -> string option) ->
  Netsim.Net.t ->
  Netsim.Host.t ->
  t
(** Run the hub on a host.  [aliases_path] is where the DCM installs the
    aliases file; [po_of_short] maps the short name in a [.LOCAL]
    address (e.g. ["ATHENA-PO-2"]) to the full post-office hostname.
    Registers the network service ["smtp"] accepting
    ["sender\nrcpt\nbody"]. *)

val route : t -> sender:string -> rcpt:string -> body:string -> delivery list
(** Route one message, performing the deliveries; the returned list
    says where every copy went. *)

val log : t -> delivery list
(** Every delivery ever made, oldest first. *)

(** {1 Client side} *)

val send :
  Netsim.Net.t -> src:string -> hub:string -> sender:string ->
  rcpt:string -> body:string -> (int, Netsim.Net.failure) result
(** Submit a message to the hub; returns how many copies were
    delivered (local + external). *)
