(** The post-office substrate: one POP server per post-office machine
    (ATHENA-PO-1, ATHENA-PO-2 in the paper), holding each assigned
    user's mailbox.

    Two network services are exposed:
    - ["pop-deliver"] — the mail hub drops a message into a local box;
    - ["pop"] — the user's client ([inc], [movemail]) lists and
      retrieves messages. *)

type message = {
  sender : string;  (** Originating principal or address. *)
  rcpt : string;  (** The local user the box belongs to. *)
  body : string;  (** Message text. *)
}

type t

val start : Netsim.Host.t -> t
(** Run a POP server on the host.  Mailboxes live in memory and are
    rebuilt empty on boot (period-appropriate: the paper's POs were
    drained frequently by clients). *)

val deliver_local : t -> sender:string -> rcpt:string -> string -> unit
(** Drop a message straight into a local mailbox. *)

val mailbox : t -> user:string -> message list
(** Current contents of a user's box, oldest first. *)

val box_count : t -> int
(** Number of non-empty mailboxes (the load the serverhosts [value1]
    fields track). *)

(** {1 Client side} *)

val retrieve :
  Netsim.Net.t -> src:string -> server:string -> user:string ->
  (message list, Netsim.Net.failure) result
(** Fetch (and remove) every message in the user's box on [server] —
    what [inc] does after finding the box through hesiod. *)
