type delivery =
  | Local of string * string
  | External of string
  | Bounced of string

type t = {
  net : Netsim.Net.t;
  host : Netsim.Host.t;
  aliases_path : string;
  po_of_short : string -> string option;
  mutable deliveries : delivery list; (* newest first *)
}

(* Parse the sendmail aliases format: "name: member, member, ..." with
   comment lines starting with '#'. *)
let parse_aliases contents =
  let table = Hashtbl.create 256 in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' then
        match String.index_opt line ':' with
        | Some i ->
            let name = String.trim (String.sub line 0 i) in
            let members =
              String.sub line (i + 1) (String.length line - i - 1)
              |> String.split_on_char ','
              |> List.map String.trim
              |> List.filter (fun m -> m <> "")
            in
            Hashtbl.replace table name members
        | None -> ())
    (String.split_on_char '\n' contents);
  table

let read_aliases t =
  match Netsim.Vfs.read (Netsim.Host.fs t.host) ~path:t.aliases_path with
  | Some contents -> parse_aliases contents
  | None -> Hashtbl.create 1

let suffix_local = ".LOCAL"

(* A pobox target looks like "user@ATHENA-PO-2.LOCAL". *)
let pobox_target addr =
  match String.index_opt addr '@' with
  | None -> None
  | Some i ->
      let user = String.sub addr 0 i in
      let domain = String.sub addr (i + 1) (String.length addr - i - 1) in
      if Filename.check_suffix domain suffix_local then
        Some (user, Filename.chop_suffix domain suffix_local)
      else None

let route t ~sender ~rcpt ~body =
  let aliases = read_aliases t in
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let deliver d = out := d :: !out in
  let rec expand addr =
    if not (Hashtbl.mem seen addr) then begin
      Hashtbl.replace seen addr ();
      match pobox_target addr with
      | Some (user, short) -> (
          match t.po_of_short short with
          | Some po_machine -> (
              let payload =
                Printf.sprintf "%s\n%s\n%s" sender user body
              in
              match
                Netsim.Net.call t.net
                  ~src:(Netsim.Host.name t.host)
                  ~dst:po_machine ~service:"pop-deliver" payload
              with
              | Ok "OK" -> deliver (Local (po_machine, user))
              | Ok _ | Error _ -> deliver (Bounced addr))
          | None -> deliver (Bounced addr))
      | None ->
          if String.contains addr '@' then deliver (External addr)
          else begin
            match Hashtbl.find_opt aliases addr with
            | Some members -> List.iter expand members
            | None -> deliver (Bounced addr)
          end
    end
  in
  expand rcpt;
  let result = List.rev !out in
  t.deliveries <- !out @ t.deliveries;
  result

let log t = List.rev t.deliveries

let start ~aliases_path ~po_of_short net host =
  let t = { net; host; aliases_path; po_of_short; deliveries = [] } in
  Netsim.Host.register host ~service:"smtp" (fun ~src:_ payload ->
      match String.split_on_char '\n' payload with
      | sender :: rcpt :: body_lines ->
          let ds =
            route t ~sender ~rcpt ~body:(String.concat "\n" body_lines)
          in
          let delivered =
            List.length
              (List.filter
                 (function Local _ | External _ -> true | Bounced _ -> false)
                 ds)
          in
          string_of_int delivered
      | _ -> "0");
  t

let send net ~src ~hub ~sender ~rcpt ~body =
  let payload = Printf.sprintf "%s\n%s\n%s" sender rcpt body in
  match Netsim.Net.call net ~src ~dst:hub ~service:"smtp" payload with
  | Ok n -> Ok (Option.value (int_of_string_opt n) ~default:0)
  | Error f -> Error f
