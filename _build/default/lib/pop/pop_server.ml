type message = {
  sender : string;
  rcpt : string;
  body : string;
}

type t = {
  host : Netsim.Host.t;
  boxes : (string, message list) Hashtbl.t; (* user -> newest first *)
}

let deliver_local t ~sender ~rcpt body =
  let existing = Option.value (Hashtbl.find_opt t.boxes rcpt) ~default:[] in
  Hashtbl.replace t.boxes rcpt ({ sender; rcpt; body } :: existing)

let mailbox t ~user =
  List.rev (Option.value (Hashtbl.find_opt t.boxes user) ~default:[])

let box_count t =
  Hashtbl.fold (fun _ msgs acc -> if msgs = [] then acc else acc + 1)
    t.boxes 0

(* wire formats: deliveries are "sender\nrcpt\nbody..."; retrievals are
   the bare user name, answered with newline-joined "sender\tbody"
   lines. *)
let start host =
  let t = { host; boxes = Hashtbl.create 64 } in
  Netsim.Host.register host ~service:"pop-deliver" (fun ~src:_ payload ->
      match String.index_opt payload '\n' with
      | None -> "ERR"
      | Some i -> (
          let sender = String.sub payload 0 i in
          let rest =
            String.sub payload (i + 1) (String.length payload - i - 1)
          in
          match String.index_opt rest '\n' with
          | None -> "ERR"
          | Some j ->
              let rcpt = String.sub rest 0 j in
              let body =
                String.sub rest (j + 1) (String.length rest - j - 1)
              in
              deliver_local t ~sender ~rcpt body;
              "OK"));
  Netsim.Host.register host ~service:"pop" (fun ~src:_ user ->
      let msgs = mailbox t ~user in
      Hashtbl.remove t.boxes user;
      String.concat "\n"
        (List.map (fun m -> m.sender ^ "\t" ^ m.body) msgs));
  Netsim.Host.on_boot host (fun _ -> Hashtbl.reset t.boxes);
  t

let retrieve net ~src ~server ~user =
  match Netsim.Net.call net ~src ~dst:server ~service:"pop" user with
  | Error f -> Error f
  | Ok "" -> Ok []
  | Ok reply ->
      Ok
        (String.split_on_char '\n' reply
        |> List.filter_map (fun line ->
               match String.index_opt line '\t' with
               | Some i ->
                   Some
                     {
                       sender = String.sub line 0 i;
                       rcpt = user;
                       body =
                         String.sub line (i + 1)
                           (String.length line - i - 1);
                     }
               | None -> None))
