let table =
  Comerr.Com_err.create_table ~name:"gdb"
    [|
      "Malformed RPC frame";
      "Protocol version skew";
      "Unknown connection id";
      "Server connection limit reached";
    |]

let code = Comerr.Com_err.code table
let bad_frame = code 0
let version_skew = code 1
let no_connection = code 2
let too_many_connections = code 3
