(** A single-process RPC server multiplexing many client connections
    (paper section 5.4): one handler services every connection, keeping
    per-connection state — exactly the structure GDB's non-blocking I/O
    gave the real Moira server.

    The server optionally models a heavyweight *backend startup* cost,
    paid either once at server start (Moira's design: the INGRES backend
    is spawned "only once, at the start up time of the daemon") or on
    every new connection (Athenareg's design, the motivating bottleneck).
    Benchmark E3 compares the two. *)

type backend_cost =
  | Per_server of int  (** Pay [ms] once, when the server starts. *)
  | Per_connection of int  (** Pay [ms] on every connection open. *)

type 'st t

type 'st conn_info = {
  conn_id : int;  (** The connection id. *)
  peer : string;  (** Client hostname. *)
  connect_time : int;  (** Engine ms when the connection opened. *)
  state : 'st;  (** Application per-connection state. *)
}

val create :
  ?max_connections:int ->
  ?backend:backend_cost ->
  net:Netsim.Net.t ->
  host:Netsim.Host.t ->
  service:string ->
  init:(peer:string -> 'st) ->
  handler:('st conn_info -> Wire.request -> int * string list list) ->
  unit ->
  'st t
(** Register the server on [host] under [service].  [init] builds the
    per-connection state when a connection opens; [handler] services
    application ops, returning [(error_code, tuples)].  Open/close ops
    and version checking are handled by this layer.  Default [backend] is
    [Per_server 0]; [max_connections] defaults to 64. *)

val connections : 'st t -> 'st conn_info list
(** Live connections, oldest first (feeds Moira's [_list_users]). *)

val connection_count : 'st t -> int
(** Number of live connections. *)

val requests_served : 'st t -> int
(** Total application requests handled since creation. *)

val drop_all_connections : 'st t -> unit
(** Forget every connection (server restart). *)
