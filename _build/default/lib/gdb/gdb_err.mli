(** GDB/RPC-layer error codes (com_err table "gdb"). *)

val table : Comerr.Com_err.table
(** The registered table. *)

val bad_frame : int
(** Request or reply failed to parse. *)

val version_skew : int
(** Client and server protocol versions differ. *)

val no_connection : int
(** Request named a connection id the server does not know. *)

val too_many_connections : int
(** Server is at its connection limit. *)
