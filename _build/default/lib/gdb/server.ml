type backend_cost =
  | Per_server of int
  | Per_connection of int

type 'st conn_info = {
  conn_id : int;
  peer : string;
  connect_time : int;
  state : 'st;
}

type 'st t = {
  net : Netsim.Net.t;
  conns : (int, 'st conn_info) Hashtbl.t;
  mutable next_conn : int;
  mutable served : int;
  max_connections : int;
  backend : backend_cost;
  init : peer:string -> 'st;
  handler : 'st conn_info -> Wire.request -> int * string list list;
}

let reply code tuples =
  Wire.encode_reply
    { Wire.rversion = Wire.protocol_version; code; tuples }

let handle t ~src payload =
  match Wire.decode_request payload with
  | Error _ -> reply Gdb_err.bad_frame []
  | Ok req ->
      if req.Wire.version <> Wire.protocol_version then
        reply Gdb_err.version_skew []
      else if req.Wire.op = Wire.op_open then begin
        if Hashtbl.length t.conns >= t.max_connections then
          reply Gdb_err.too_many_connections []
        else begin
          (match t.backend with
          | Per_connection ms -> Sim.Engine.advance (Netsim.Net.engine t.net) ms
          | Per_server _ -> ());
          let conn_id = t.next_conn in
          t.next_conn <- conn_id + 1;
          let info =
            {
              conn_id;
              peer = src;
              connect_time = Sim.Engine.now (Netsim.Net.engine t.net);
              state = t.init ~peer:src;
            }
          in
          Hashtbl.replace t.conns conn_id info;
          reply 0 [ [ string_of_int conn_id ] ]
        end
      end
      else if req.Wire.op = Wire.op_close then begin
        Hashtbl.remove t.conns req.Wire.conn;
        reply 0 []
      end
      else begin
        match Hashtbl.find_opt t.conns req.Wire.conn with
        | None -> reply Gdb_err.no_connection []
        | Some info ->
            t.served <- t.served + 1;
            let code, tuples = t.handler info req in
            reply code tuples
      end

let create ?(max_connections = 64) ?(backend = Per_server 0) ~net ~host
    ~service ~init ~handler () =
  let t =
    {
      net;
      conns = Hashtbl.create 32;
      next_conn = 1;
      served = 0;
      max_connections;
      backend;
      init;
      handler;
    }
  in
  (match backend with
  | Per_server ms -> Sim.Engine.advance (Netsim.Net.engine net) ms
  | Per_connection _ -> ());
  Netsim.Host.register host ~service (fun ~src payload ->
      handle t ~src payload);
  t

let connections t =
  Hashtbl.fold (fun _ info acc -> info :: acc) t.conns []
  |> List.sort (fun a b -> Int.compare a.conn_id b.conn_id)

let connection_count t = Hashtbl.length t.conns
let requests_served t = t.served
let drop_all_connections t = Hashtbl.reset t.conns
