lib/gdb/client.mli: Netsim
