lib/gdb/gdb_err.mli: Comerr
