lib/gdb/server.ml: Gdb_err Hashtbl Int List Netsim Sim Wire
