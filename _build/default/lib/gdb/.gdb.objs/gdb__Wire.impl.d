lib/gdb/wire.ml: Buffer List String
