lib/gdb/server.mli: Netsim Wire
