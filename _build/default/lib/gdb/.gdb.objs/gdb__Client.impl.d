lib/gdb/client.ml: Comerr Gdb_err Netsim Printf Wire
