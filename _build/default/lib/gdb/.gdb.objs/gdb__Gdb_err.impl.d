lib/gdb/gdb_err.ml: Comerr
