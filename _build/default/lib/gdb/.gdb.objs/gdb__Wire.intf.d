lib/gdb/wire.mli:
