(* The replicated read path: journal-streaming replicas converge
   byte-identically, sequenced reads preserve read-your-writes across
   lagging replicas, client failover quarantines faulty replicas and
   probes them back, retention gaps fall back to snapshot catch-up, and
   reads survive the primary being down. *)

open Workload
open Relation

let counter name = Option.value (Obs.find_counter Obs.default name) ~default:0

let dump_of mdb = Backup.dump (Moira.Mdb.db mdb)

let must c ~name args =
  match Moira.Mr_client.mr_query_list c ~name args with
  | Ok tuples -> tuples
  | Error code ->
      Alcotest.failf "%s: %s" name (Comerr.Com_err.error_message code)

let shell_of tuples =
  (* get_user_by_login: login, uid, shell, ... *)
  match tuples with
  | (_ :: _ :: shell :: _) :: _ -> shell
  | _ -> Alcotest.fail "get_user_by_login: no tuple"

let some_login tb = (Testbed.(tb.built)).Population.logins.(0)

(* --- convergence: replica database == primary database, bytewise --- *)

let test_replicas_converge_byte_identical () =
  let tb = Testbed.create ~replicas:2 ~repl_poll_ms:30_000 () in
  let admin = Testbed.admin_client tb ~src:"W20-001.MIT.EDU" in
  ignore (must admin ~name:"add_machine" [ "REPL-TEST-1.MIT.EDU"; "VAX" ]);
  ignore
    (must admin ~name:"add_user"
       [ "repltest"; "4242"; "/bin/csh"; "Test"; "Repl"; "T"; "1"; "xx";
         "1991" ]);
  Testbed.run_minutes tb 5;
  ignore
    (must admin ~name:"update_user_shell" [ "repltest"; "/bin/bash" ]);
  Testbed.run_minutes tb 5;
  let primary_dump = dump_of tb.Testbed.mdb in
  let head = Journal.head_seq (Moira.Mdb.journal tb.Testbed.mdb) in
  List.iter
    (fun (machine, r) ->
      Alcotest.(check int)
        (machine ^ " applied the whole journal")
        head
        (Replicate.applied_seq (Moira.Mr_server.replica_handle r));
      Alcotest.(check bool)
        (machine ^ " database byte-identical to primary")
        true
        (dump_of (Moira.Mr_server.replica_mdb r) = primary_dump))
    tb.Testbed.replicas;
  Alcotest.(check bool) "replicas really ran" true
    (List.length tb.Testbed.replicas = 2)

(* --- read-your-writes across a lagging replica --- *)

let test_read_your_writes_on_lagging_replica () =
  (* poll period of an hour: the replica only catches up when the test
     pulls for it explicitly, so lag is deterministic *)
  let tb = Testbed.create ~replicas:1 ~repl_poll_ms:3_600_000 () in
  Testbed.run_minutes tb 1;
  let _, r = List.hd tb.Testbed.replicas in
  let handle = Moira.Mr_server.replica_handle r in
  (* bring the replica level with the primary, then stop pulling *)
  Replicate.poll handle;
  Alcotest.(check int) "replica level with primary"
    (Journal.head_seq (Moira.Mdb.journal tb.Testbed.mdb))
    (Replicate.applied_seq handle);
  let login = some_login tb in
  let admin = Testbed.admin_client tb ~src:"W20-001.MIT.EDU" in
  Moira.Mr_client.set_replicas admin (Testbed.replica_machines tb);
  (* the write goes to the primary and teaches the client its seq *)
  ignore (must admin ~name:"update_user_shell" [ login; "/bin/zsh" ]);
  Alcotest.(check bool) "write advanced the high-water mark" true
    (Moira.Mr_client.high_water admin > 0);
  let stale0 = counter "client.read.stale_bounce" in
  (* the replica has not pulled since the write: a sequenced read must
     bounce off it and still observe the write via the primary *)
  let shell = shell_of (must admin ~name:"get_user_by_login" [ login ]) in
  Alcotest.(check string) "client observes its own write" "/bin/zsh" shell;
  Alcotest.(check bool) "the stale replica was bounced off" true
    (counter "client.read.stale_bounce" > stale0);
  (* an unsequenced client talking straight to the replica still sees
     the old value — the lag the bounce protected us from *)
  let naive = Testbed.client tb ~src:"W20-002.MIT.EDU" in
  Alcotest.(check int) "connect to replica" 0
    (Moira.Mr_client.mr_connect naive ~dst:(Testbed.replica_machine 0));
  Alcotest.(check int) "auth against replica" 0
    (Moira.Mr_client.mr_auth naive ~kdc:tb.Testbed.kdc
       ~principal:tb.Testbed.built.Population.admin
       ~password:tb.Testbed.built.Population.admin_password
       ~clientname:"test");
  let old_shell =
    shell_of (must naive ~name:"get_user_by_login" [ login ])
  in
  Alcotest.(check bool) "replica really is behind" true
    (old_shell <> "/bin/zsh");
  (* once the replica catches up, sequenced reads land on it again *)
  Replicate.poll handle;
  let replica_reads0 = counter "client.read.replica" in
  let shell = shell_of (must admin ~name:"get_user_by_login" [ login ]) in
  Alcotest.(check string) "caught-up replica serves the write" "/bin/zsh"
    shell;
  Alcotest.(check bool) "read came from the replica" true
    (counter "client.read.replica" > replica_reads0)

(* --- writes bounce off replicas --- *)

let test_replica_refuses_writes () =
  let tb = Testbed.create ~replicas:1 () in
  Testbed.run_minutes tb 1;
  let c = Testbed.client tb ~src:"W20-003.MIT.EDU" in
  Alcotest.(check int) "connect to replica" 0
    (Moira.Mr_client.mr_connect c ~dst:(Testbed.replica_machine 0));
  Alcotest.(check int) "auth against replica" 0
    (Moira.Mr_client.mr_auth c ~kdc:tb.Testbed.kdc
       ~principal:tb.Testbed.built.Population.admin
       ~password:tb.Testbed.built.Population.admin_password
       ~clientname:"test");
  match
    Moira.Mr_client.mr_query_list c ~name:"add_machine"
      [ "SHOULD-FAIL.MIT.EDU"; "VAX" ]
  with
  | Ok _ -> Alcotest.fail "replica accepted a write"
  | Error code ->
      Alcotest.(check int) "read_only_replica" Moira.Mr_err.read_only_replica
        code

(* --- quarantine and probe-back --- *)

let test_quarantine_and_probe_back () =
  let tb = Testbed.create ~replicas:2 ~repl_poll_ms:5_000 () in
  Testbed.run_minutes tb 1;
  let login = some_login tb in
  let admin = Testbed.admin_client tb ~src:"W20-004.MIT.EDU" in
  Moira.Mr_client.set_replicas admin
    ~failover:
      {
        Moira.Mr_client.quarantine_after = 1;
        backoff_base_ms = 60_000;
        backoff_max_ms = 60_000;
        backoff_jitter = 0.0;
      }
    (Testbed.replica_machines tb);
  (* one warm read so both replica connections exist *)
  ignore (must admin ~name:"get_user_by_login" [ login ]);
  ignore (must admin ~name:"get_user_by_login" [ login ]);
  (* kill replica 1 for two minutes of engine time *)
  let victim = Testbed.replica_machine 0 in
  Netsim.Net.schedule_outage tb.Testbed.net ~host:victim
    ~at:(Sim.Engine.now tb.Testbed.engine + 1_000)
    ~duration_ms:120_000;
  Testbed.run_minutes tb 1;
  let q0 = counter "client.replica_quarantined" in
  (* enough reads to hit the dead replica at least once *)
  for _ = 1 to 4 do
    ignore (must admin ~name:"get_user_by_login" [ login ])
  done;
  Alcotest.(check bool) "victim got quarantined" true
    (counter "client.replica_quarantined" > q0);
  Alcotest.(check bool) "status shows the quarantine" true
    (List.assoc victim (Moira.Mr_client.replica_status admin));
  (* while quarantined, every read still succeeds *)
  for _ = 1 to 4 do
    ignore (must admin ~name:"get_user_by_login" [ login ])
  done;
  (* past the backoff and the outage, the probe read recovers it *)
  Testbed.run_minutes tb 5;
  let recovered0 = counter "client.replica_recovered" in
  for _ = 1 to 4 do
    ignore (must admin ~name:"get_user_by_login" [ login ])
  done;
  Alcotest.(check bool) "probe recovered the replica" true
    (counter "client.replica_recovered" > recovered0);
  Alcotest.(check bool) "status healthy again" true
    (not (List.assoc victim (Moira.Mr_client.replica_status admin)))

(* --- retention gap forces snapshot catch-up --- *)

let test_retention_gap_snapshot_catchup () =
  let tb =
    Testbed.create ~replicas:1 ~repl_poll_ms:600_000 ~repl_retain:5 ()
  in
  (* let the replica boot-subscribe once *)
  Testbed.run_minutes tb 15;
  let machine, r = List.hd tb.Testbed.replicas in
  let admin = Testbed.admin_client tb ~src:"W20-005.MIT.EDU" in
  (* burst far past the retention window within one poll period *)
  for i = 1 to 30 do
    ignore
      (must admin ~name:"add_machine"
         [ Printf.sprintf "BURST-%02d.MIT.EDU" i; "VAX" ])
  done;
  let snaps0 =
    counter ("repl." ^ String.lowercase_ascii machine ^ ".snapshots")
  in
  Testbed.run_minutes tb 15;
  Alcotest.(check bool) "snapshot catch-up happened" true
    (counter ("repl." ^ String.lowercase_ascii machine ^ ".snapshots")
    > snaps0);
  Alcotest.(check bool) "converged byte-identical anyway" true
    (dump_of (Moira.Mr_server.replica_mdb r) = dump_of tb.Testbed.mdb);
  Alcotest.(check int) "sequence caught up"
    (Journal.head_seq (Moira.Mdb.journal tb.Testbed.mdb))
    (Replicate.applied_seq (Moira.Mr_server.replica_handle r))

(* --- reads survive the primary being down --- *)

let test_reads_survive_primary_down () =
  let tb = Testbed.create ~replicas:1 ~repl_poll_ms:5_000 () in
  Testbed.run_minutes tb 1;
  let login = some_login tb in
  let admin = Testbed.admin_client tb ~src:"W20-006.MIT.EDU" in
  Moira.Mr_client.set_replicas admin (Testbed.replica_machines tb);
  (* a write, then let the replica apply it *)
  ignore (must admin ~name:"update_user_shell" [ login; "/bin/tcsh" ]);
  Testbed.run_minutes tb 1;
  (* primary goes down *)
  let primary = tb.Testbed.built.Population.moira_machine in
  Netsim.Net.schedule_outage tb.Testbed.net ~host:primary
    ~at:(Sim.Engine.now tb.Testbed.engine + 1_000)
    ~duration_ms:300_000;
  Testbed.run_minutes tb 1;
  (* reads keep the answer, including our own write *)
  let shell = shell_of (must admin ~name:"get_user_by_login" [ login ]) in
  Alcotest.(check string) "read served during primary outage" "/bin/tcsh"
    shell;
  (* writes fail while the primary is down *)
  (match
     Moira.Mr_client.mr_query_list admin ~name:"update_user_shell"
       [ login; "/bin/sh" ]
   with
  | Ok _ -> Alcotest.fail "write succeeded against a dead primary"
  | Error _ -> ());
  (* after reboot, writes work again and replication resumes *)
  Testbed.run_minutes tb 10;
  ignore (must admin ~name:"update_user_shell" [ login; "/bin/sh" ]);
  Testbed.run_minutes tb 1;
  let _, r = List.hd tb.Testbed.replicas in
  Alcotest.(check bool) "replica reconverged after reboot" true
    (dump_of (Moira.Mr_server.replica_mdb r) = dump_of tb.Testbed.mdb)

let suite =
  [
    Alcotest.test_case "replicas converge byte-identical" `Quick
      test_replicas_converge_byte_identical;
    Alcotest.test_case "read-your-writes on lagging replica" `Quick
      test_read_your_writes_on_lagging_replica;
    Alcotest.test_case "replica refuses writes" `Quick
      test_replica_refuses_writes;
    Alcotest.test_case "quarantine and probe-back" `Quick
      test_quarantine_and_probe_back;
    Alcotest.test_case "retention gap snapshot catch-up" `Quick
      test_retention_gap_snapshot_catchup;
    Alcotest.test_case "reads survive primary down" `Quick
      test_reads_survive_primary_down;
  ]
