(* Planner/naive equivalence: random tables (indexed and unindexed
   columns, holes left by deletes) and random predicate trees, checking
   that compiled plans — whatever access path they choose — return
   exactly what a brute-force [Pred.eval] scan returns, including after
   updates and clears that bump the index versions under cached plans. *)

open Relation

let schema =
  Schema.make ~name:"p"
    [
      { Schema.cname = "k"; ctype = Value.TStr };
      { Schema.cname = "s"; ctype = Value.TStr };
      { Schema.cname = "n"; ctype = Value.TInt };
      { Schema.cname = "m"; ctype = Value.TInt };
      { Schema.cname = "b"; ctype = Value.TBool };
    ]

let indexed = [ "k"; "n"; "b" ]

let fresh_table () = Table.create ~indexed ~clock:(fun () -> 0) schema

(* --- random rows and mutations ------------------------------------ *)

type op =
  | Insert of string * string * int * int * bool
  | Set_n of string * int (* n := v where k = key *)
  | Rename of string * string (* k := b where k = a *)
  | Delete of string
  | Delete_lt of int
  | Clear

let key_pool = [| "ab"; "aB"; "AB"; "ax"; "bx"; "b?"; "ca"; "cb"; "\xff\xff" |]

let op_gen =
  let open QCheck.Gen in
  let key = map (Array.get key_pool) (int_range 0 (Array.length key_pool - 1)) in
  let num = int_range (-5) 30 in
  frequency
    [
      ( 6,
        map3
          (fun k (s, n) (m, b) -> Insert (k, s, n, m, b))
          key
          (pair key num)
          (pair num bool) );
      (2, map2 (fun k v -> Set_n (k, v)) key num);
      (1, map2 (fun a b -> Rename (a, b)) key key);
      (2, map (fun k -> Delete k) key);
      (1, map (fun v -> Delete_lt v) num);
      (1, return Clear);
    ]

let show_op = function
  | Insert (k, s, n, m, b) -> Printf.sprintf "Ins(%S,%S,%d,%d,%b)" k s n m b
  | Set_n (k, v) -> Printf.sprintf "Set_n(%S,%d)" k v
  | Rename (a, b) -> Printf.sprintf "Ren(%S,%S)" a b
  | Delete k -> Printf.sprintf "Del(%S)" k
  | Delete_lt v -> Printf.sprintf "Del_lt(%d)" v
  | Clear -> "Clear"

let apply t = function
  | Insert (k, s, n, m, b) ->
      ignore
        (Table.insert t
           [| Value.Str k; Value.Str s; Value.Int n; Value.Int m; Value.Bool b |])
  | Set_n (k, v) ->
      ignore (Plan.set_fields t (Pred.eq_str "k" k) [ ("n", Value.Int v) ])
  | Rename (a, b) ->
      ignore (Plan.set_fields t (Pred.eq_str "k" a) [ ("k", Value.Str b) ])
  | Delete k -> ignore (Plan.delete t (Pred.eq_str "k" k))
  | Delete_lt v -> ignore (Plan.delete t (Pred.Lt ("n", Value.Int v)))
  | Clear -> Table.clear t

(* --- random predicate trees ---------------------------------------- *)

let pred_gen =
  let open QCheck.Gen in
  let str_col = oneofl [ "k"; "s" ] in
  let int_col = oneofl [ "n"; "m" ] in
  let any_col = oneofl [ "k"; "s"; "n"; "m"; "b" ] in
  let pattern =
    oneofl
      [ "a*"; "aB"; "ab"; "AB"; "a?"; "*b"; "?b"; "c*"; "*"; "b?"; "\xff*" ]
  in
  (* equality values are sometimes deliberately mistyped for the column:
     plans must agree with [Pred.eval], which just compares unequal *)
  let value =
    frequency
      [
        (4, map (fun i -> Value.Int i) (int_range (-5) 30));
        (4, map (Array.get key_pool) (int_range 0 (Array.length key_pool - 1))
           |> fun g -> map (fun s -> Value.Str s) g);
        (1, map (fun b -> Value.Bool b) bool);
      ]
  in
  let leaf =
    frequency
      [
        (1, return Pred.True);
        (4, map2 (fun c v -> Pred.Eq (c, v)) any_col value);
        (3, map2 (fun c p -> Pred.Glob (c, p)) str_col pattern);
        (2, map2 (fun c p -> Pred.Glob_fold (c, p)) str_col pattern);
        ( 3,
          map3
            (fun op c v ->
              match op with
              | 0 -> Pred.Lt (c, Value.Int v)
              | 1 -> Pred.Le (c, Value.Int v)
              | 2 -> Pred.Gt (c, Value.Int v)
              | _ -> Pred.Ge (c, Value.Int v))
            (int_range 0 3) int_col
            (int_range (-5) 30) );
      ]
  in
  fix
    (fun self depth ->
      if depth = 0 then leaf
      else
        frequency
          [
            (3, leaf);
            (2, map2 (fun a b -> Pred.And (a, b)) (self (depth - 1)) (self (depth - 1)));
            (2, map2 (fun a b -> Pred.Or (a, b)) (self (depth - 1)) (self (depth - 1)));
            (1, map (fun a -> Pred.Not a) (self (depth - 1)));
          ])
    3

let show_pred p = Format.asprintf "%a" Pred.pp p

(* --- the equivalence oracle ---------------------------------------- *)

let brute t p =
  List.filter (fun (_, row) -> Pred.eval (Table.schema t) p row)
    (Table.select t Pred.True)

let plans_agree t p =
  let expected = brute t p in
  Plan.select t p = expected
  && Plan.count t p = List.length expected
  && Plan.exists t p = (expected <> [])
  && Plan.select_one t p
     = (match expected with [ r ] -> Some r | _ -> None)

let scenario_gen =
  QCheck.Gen.(
    triple
      (list_size (int_range 0 60) op_gen)
      (list_size (int_range 0 30) op_gen)
      (list_size (int_range 1 8) pred_gen))

let show_scenario (ops1, ops2, preds) =
  Printf.sprintf "ops1=[%s] ops2=[%s] preds=[%s]"
    (String.concat "; " (List.map show_op ops1))
    (String.concat "; " (List.map show_op ops2))
    (String.concat "; " (List.map show_pred preds))

let prop_equivalence =
  QCheck.Test.make ~name:"plans = brute force (incl. mutations + clear)"
    ~count:300
    (QCheck.make ~print:show_scenario scenario_gen)
    (fun (ops1, ops2, preds) ->
      let t = fresh_table () in
      List.iter (apply t) ops1;
      (* cold plans against the populated table *)
      List.for_all (plans_agree t) preds
      (* warm plans after further mutations (index versions bumped) *)
      && begin
           List.iter (apply t) ops2;
           List.for_all (plans_agree t) preds
         end
      (* warm plans after a clear *)
      && begin
           Table.clear t;
           List.for_all (plans_agree t) preds
         end)

(* unindexed table: everything must fall back to scans and still agree *)
let prop_equivalence_unindexed =
  QCheck.Test.make ~name:"plans = brute force (no indexes)" ~count:150
    (QCheck.make ~print:show_scenario scenario_gen)
    (fun (ops1, ops2, preds) ->
      let t = Table.create ~indexed:[] ~clock:(fun () -> 0) schema in
      List.iter (apply t) ops1;
      List.iter (apply t) ops2;
      List.for_all (plans_agree t) preds)

(* --- directed access-path checks ----------------------------------- *)

let explain t p =
  let shape, _ = Pred.split p in
  Table.plan_explain (Plan.prepare t shape)

let test_paths () =
  let t = fresh_table () in
  List.iter
    (fun (k, n) ->
      ignore
        (Table.insert t
           [| Value.Str k; Value.Str k; Value.Int n; Value.Int n;
              Value.Bool (n mod 2 = 0) |]))
    [ ("ab", 1); ("aB", 2); ("bx", 3); ("ca", 10); ("cb", 11) ];
  let check what pred prefix =
    let e = explain t pred in
    Alcotest.(check bool)
      (Printf.sprintf "%s -> %s (got %s)" what prefix e)
      true
      (String.length e >= String.length prefix
      && String.sub e 0 (String.length prefix) = prefix)
  in
  check "indexed equality" (Pred.eq_str "k" "ab") "probe(eq(k)";
  check "non-pattern glob" (Pred.Glob ("k", "ab")) "probe(key(k";
  check "folded equality" (Pred.Glob_fold ("k", "AB")) "probe(fold(k";
  check "or of equalities"
    (Pred.disj [ Pred.eq_str "k" "ab"; Pred.eq_str "k" "bx" ])
    "probe(union(";
  check "conjunct picks probe"
    (Pred.And (Pred.Glob ("s", "a*"), Pred.eq_str "k" "ab"))
    "probe(";
  check "range" (Pred.And (Pred.Ge ("n", Value.Int 2), Pred.Lt ("n", Value.Int 11)))
    "range(n)";
  check "prefix glob" (Pred.Glob ("k", "a*")) "prefix(k,\"a\")";
  check "unindexed equality" (Pred.eq_str "s" "ab") "scan";
  check "suffix glob" (Pred.Glob ("k", "*b")) "scan";
  check "glob on int column" (Pred.Glob ("n", "1*")) "scan";
  (* path results spot-checked against brute force *)
  List.iter
    (fun p -> Alcotest.(check bool) (show_pred p) true (plans_agree t p))
    [
      Pred.eq_str "k" "ab";
      Pred.Glob ("k", "a*");
      Pred.Glob_fold ("k", "AB");
      Pred.disj [ Pred.eq_str "k" "ab"; Pred.eq_str "k" "bx" ];
      Pred.And (Pred.Ge ("n", Value.Int 2), Pred.Lt ("n", Value.Int 11));
      Pred.Glob ("n", "1*");
      Pred.Glob ("k", "\xff*");
    ]

let test_cache () =
  Plan.reset_cache ();
  let t = fresh_table () in
  ignore
    (Table.insert t
       [| Value.Str "ab"; Value.Str "x"; Value.Int 1; Value.Int 1;
          Value.Bool true |]);
  ignore (Plan.select t (Pred.eq_str "k" "ab"));
  let _, misses1, _ = Plan.cache_stats () in
  (* same shape, different argument: must hit the cached plan *)
  ignore (Plan.select t (Pred.eq_str "k" "zz"));
  ignore (Plan.select t (Pred.eq_str "k" "bx"));
  let hits, misses2, size = Plan.cache_stats () in
  Alcotest.(check int) "one miss" misses1 misses2;
  Alcotest.(check bool) "hits counted" true (hits >= 2);
  Alcotest.(check bool) "cache non-empty" true (size >= 1);
  (* clear + repopulate: the cached plan must see the new contents *)
  Table.clear t;
  ignore
    (Table.insert t
       [| Value.Str "zz"; Value.Str "y"; Value.Int 2; Value.Int 2;
          Value.Bool false |]);
  Alcotest.(check int) "cached plan after clear" 1
    (List.length (Plan.select t (Pred.eq_str "k" "zz")));
  Alcotest.(check int) "cached plan sees deletion" 0
    (List.length (Plan.select t (Pred.eq_str "k" "ab")))

let test_int_range_order () =
  (* int bucket keys sort numerically in the ordered view, not as
     strings ("10" < "9" lexically would drop rows from ranges) *)
  let t = fresh_table () in
  List.iter
    (fun n ->
      ignore
        (Table.insert t
           [| Value.Str "k"; Value.Str "s"; Value.Int n; Value.Int n;
              Value.Bool true |]))
    [ 1; 5; 9; 10; 11; 20; 100 ];
  let p = Pred.And (Pred.Ge ("n", Value.Int 9), Pred.Le ("n", Value.Int 20)) in
  Alcotest.(check int) "numeric range" 4 (Plan.count t p);
  Alcotest.(check bool) "agrees with brute force" true (plans_agree t p)

let test_split_roundtrip () =
  let p =
    Pred.And
      ( Pred.Or (Pred.eq_str "k" "ab", Pred.Glob ("s", "a*")),
        Pred.Not (Pred.Lt ("n", Value.Int 7)) )
  in
  let shape, params = Pred.split p in
  Alcotest.(check string) "fill inverts split" (show_pred p)
    (show_pred (Pred.fill shape params))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_equivalence;
    QCheck_alcotest.to_alcotest prop_equivalence_unindexed;
    Alcotest.test_case "access paths" `Quick test_paths;
    Alcotest.test_case "plan cache" `Quick test_cache;
    Alcotest.test_case "int range order" `Quick test_int_range_order;
    Alcotest.test_case "split/fill roundtrip" `Quick test_split_roundtrip;
  ]
