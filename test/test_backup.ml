(* mrbackup/mrrestore ASCII dump format and the change journal. *)

open Relation

let schema =
  Schema.make ~name:"things"
    [
      { Schema.cname = "name"; ctype = Value.TStr };
      { Schema.cname = "n"; ctype = Value.TInt };
    ]

let test_escape_basic () =
  Alcotest.(check string) "colon" "a\\:b" (Backup.escape_field "a:b");
  Alcotest.(check string) "backslash" "a\\\\b" (Backup.escape_field "a\\b");
  Alcotest.(check string) "newline" "a\\012b" (Backup.escape_field "a\nb");
  Alcotest.(check string) "plain" "hello" (Backup.escape_field "hello")

let test_unescape_inverse () =
  List.iter
    (fun s ->
      Alcotest.(check string) ("roundtrip " ^ String.escaped s) s
        (Backup.unescape_field (Backup.escape_field s)))
    [ "plain"; "a:b"; "a\\b"; "tab\there"; "nl\nhere"; ":::"; "\\\\"; "" ]

let test_unescape_errors () =
  Alcotest.check_raises "dangling" (Failure "backup: dangling backslash")
    (fun () -> ignore (Backup.unescape_field "abc\\"));
  Alcotest.check_raises "bad escape" (Failure "backup: bad escape \\x")
    (fun () -> ignore (Backup.unescape_field "\\x"));
  Alcotest.check_raises "truncated octal"
    (Failure "backup: truncated octal escape") (fun () ->
      ignore (Backup.unescape_field "\\01"))

let test_row_roundtrip () =
  let fields = [ "user:name"; "12"; "multi\nline"; "back\\slash" ] in
  Alcotest.(check (list string))
    "decode inverse of encode" fields
    (Backup.decode_row (Backup.encode_row fields))

let test_dump_restore () =
  let clock = ref 10 in
  let db = Db.create ~clock:(fun () -> !clock) in
  let t = Db.add_table db schema in
  ignore (Table.insert t [| Value.Str "one:colon"; Value.Int 1 |]);
  ignore (Table.insert t [| Value.Str "two"; Value.Int 2 |]);
  let dump = Backup.dump db in
  (* restore into a fresh database with the same schemas *)
  let db2 = Db.create ~clock:(fun () -> !clock) in
  let t2 = Db.add_table db2 schema in
  Backup.restore db2 dump;
  Alcotest.(check int) "rows restored" 2 (Table.cardinal t2);
  match Table.select_one t2 (Pred.eq_str "name" "one:colon") with
  | Some (_, r) -> Alcotest.(check int) "int field" 1 (Value.int r.(1))
  | None -> Alcotest.fail "row with colon lost"

let test_restore_clears_first () =
  let db = Db.create ~clock:(fun () -> 0) in
  let t = Db.add_table db schema in
  ignore (Table.insert t [| Value.Str "stale"; Value.Int 9 |]);
  Backup.restore db [ ("things", "fresh:1\n") ];
  Alcotest.(check int) "only restored rows" 1 (Table.cardinal t);
  Alcotest.(check int) "stale gone" 0
    (Table.count t (Pred.eq_str "name" "stale"))

let test_restore_unknown_relation () =
  let db = Db.create ~clock:(fun () -> 0) in
  Alcotest.check_raises "unknown" (Failure "backup: unknown relation \"ghost\"")
    (fun () -> Backup.restore db [ ("ghost", "") ])

let test_dump_size () =
  let db = Db.create ~clock:(fun () -> 0) in
  let t = Db.add_table db schema in
  ignore (Table.insert t [| Value.Str "abc"; Value.Int 1 |]);
  Alcotest.(check int) "size = bytes of files"
    (String.length (Backup.dump_table t))
    (Backup.dump_size db)

(* Full-database dump/restore across the real Moira schema. *)
let test_moira_schema_roundtrip () =
  let clock = ref 1000 in
  let mdb = Moira.Mdb.create ~clock:(fun () -> !clock) in
  let glue =
    Moira.Glue.create ~mdb ~registry:(Moira.Catalog.make ()) ()
  in
  let must name args =
    match Moira.Glue.query glue ~name args with
    | Ok _ -> ()
    | Error c -> Alcotest.failf "%s: %s" name (Comerr.Com_err.error_message c)
  in
  must "add_machine" [ "HOST-1.MIT.EDU"; "VAX" ];
  must "add_user"
    [ "zaphod"; "1"; "/bin/csh"; "Beeblebrox"; "Zaphod"; "Q"; "1"; "xx";
      "1991" ];
  let db = Moira.Mdb.db mdb in
  let dump = Backup.dump db in
  let mdb2 = Moira.Mdb.create ~clock:(fun () -> !clock) in
  Backup.restore (Moira.Mdb.db mdb2) dump;
  Alcotest.(check bool) "user restored" true
    (Moira.Lookup.user_id mdb2 "zaphod" <> None);
  Alcotest.(check bool) "machine restored" true
    (Moira.Lookup.machine_id mdb2 "host-1.mit.edu" <> None)

(* --- journal --- *)

let entry time who query args =
  { Journal.time; who; client = "test"; query; ctx = ""; args }

let test_journal_roundtrip () =
  let j = Journal.create () in
  Journal.append j (entry 10 "ann" "update_user_shell" [ "ann"; "/bin/sh" ]);
  Journal.append j (entry 20 "bob" "add_member_to_list" [ "l:1"; "USER"; "bob" ]);
  let j2 = Journal.of_lines (Journal.to_lines j) in
  Alcotest.(check int) "length" 2 (Journal.length j2);
  match Journal.entries j2 with
  | [ e1; e2 ] ->
      Alcotest.(check string) "who" "ann" e1.Journal.who;
      Alcotest.(check (list string))
        "args with colon preserved" [ "l:1"; "USER"; "bob" ]
        e2.Journal.args
  | _ -> Alcotest.fail "entries"

let test_journal_since_and_replay () =
  let j = Journal.create () in
  Journal.append j (entry 10 "a" "q" []);
  Journal.append j (entry 20 "b" "q" []);
  Journal.append j (entry 30 "c" "q" []);
  Alcotest.(check int) "since 20" 2 (List.length (Journal.since j 20));
  let seen = ref [] in
  let n = Journal.replay j ~since:20 ~f:(fun e -> seen := e.Journal.who :: !seen) in
  Alcotest.(check int) "replayed" 2 n;
  Alcotest.(check (list string)) "order" [ "b"; "c" ] (List.rev !seen)

let test_journal_torn_tail () =
  let j = Journal.create () in
  Journal.append j (entry 10 "ann" "update_user_shell" [ "ann"; "/bin/sh" ]);
  Journal.append j (entry 20 "bob" "add_member_to_list" [ "l:1"; "USER"; "bob" ]);
  let lines = Journal.to_lines j in
  (* a crash mid-append leaves a torn final record: the second entry
     cut off before its query field *)
  let first_line =
    String.sub lines 0 (String.index lines '\n' + 1)
  in
  let torn = first_line ^ "20:bob" in
  let torn0 =
    Option.value (Obs.find_counter Obs.default "journal.torn_tail") ~default:0
  in
  let j2 = Journal.of_lines torn in
  Alcotest.(check int) "good prefix kept" 1 (Journal.length j2);
  Alcotest.(check string) "first entry intact" "ann"
    (List.hd (Journal.entries j2)).Journal.who;
  Alcotest.(check int) "torn tail counted" (torn0 + 1)
    (Option.value (Obs.find_counter Obs.default "journal.torn_tail")
       ~default:0);
  (* strict mode refuses instead of truncating *)
  (match Journal.of_lines ~strict:true torn with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "strict of_lines accepted a torn journal");
  (* an entirely well-formed journal is untouched either way *)
  Alcotest.(check int) "clean strict parse" 2
    (Journal.length (Journal.of_lines ~strict:true lines))

let test_journal_garbage_line () =
  let j = Journal.create () in
  Journal.append j (entry 10 "ann" "q" [ "a" ]);
  let lines = Journal.to_lines j ^ "not: a; journal, record\n" in
  let j2 = Journal.of_lines lines in
  Alcotest.(check int) "truncated at garbage" 1 (Journal.length j2)

let prop_escape_roundtrip =
  QCheck.Test.make ~name:"backup: escape/unescape roundtrip" ~count:500
    QCheck.(string_of_size (Gen.int_range 0 60))
    (fun s -> Backup.unescape_field (Backup.escape_field s) = s)

let prop_escaped_has_no_raw_colon =
  QCheck.Test.make ~name:"backup: escaped field has no raw colon/newline"
    ~count:500
    QCheck.(string_of_size (Gen.int_range 0 60))
    (fun s ->
      let e = Backup.escape_field s in
      (not (String.contains e '\n'))
      &&
      (* every ':' is preceded by a backslash *)
      let ok = ref true in
      String.iteri
        (fun i c ->
          if c = ':' && (i = 0 || e.[i - 1] <> '\\') then ok := false)
        e;
      !ok)

let prop_row_roundtrip =
  QCheck.Test.make ~name:"backup: row encode/decode roundtrip" ~count:300
    QCheck.(list_of_size (Gen.int_range 1 6) (string_of_size (Gen.int_range 0 20)))
    (fun fields ->
      Backup.decode_row (Backup.encode_row fields) = fields)

let prop_random_table_dump_restore =
  QCheck.Test.make ~name:"backup: random table dump/restore identity"
    ~count:150
    QCheck.(
      list_of_size (Gen.int_range 0 20)
        (pair (string_of_size (Gen.int_range 0 30)) small_int))
    (fun rows ->
      let clock () = 7 in
      let db = Db.create ~clock in
      let t = Db.add_table db schema in
      List.iter
        (fun (name, n) ->
          ignore (Table.insert t [| Value.Str name; Value.Int n |]))
        rows;
      let dump = Backup.dump db in
      let db2 = Db.create ~clock in
      let t2 = Db.add_table db2 schema in
      Backup.restore db2 dump;
      let contents tbl =
        List.map
          (fun (_, r) -> (Value.str r.(0), Value.int r.(1)))
          (Table.select tbl Pred.True)
      in
      contents t2 = rows && Backup.dump db2 = dump)

let suite =
  [
    Alcotest.test_case "escape basics" `Quick test_escape_basic;
    Alcotest.test_case "unescape inverse" `Quick test_unescape_inverse;
    Alcotest.test_case "unescape errors" `Quick test_unescape_errors;
    Alcotest.test_case "row roundtrip" `Quick test_row_roundtrip;
    Alcotest.test_case "dump/restore" `Quick test_dump_restore;
    Alcotest.test_case "restore clears" `Quick test_restore_clears_first;
    Alcotest.test_case "restore unknown relation" `Quick
      test_restore_unknown_relation;
    Alcotest.test_case "dump size" `Quick test_dump_size;
    Alcotest.test_case "moira schema roundtrip" `Quick
      test_moira_schema_roundtrip;
    Alcotest.test_case "journal roundtrip" `Quick test_journal_roundtrip;
    Alcotest.test_case "journal since/replay" `Quick
      test_journal_since_and_replay;
    Alcotest.test_case "journal torn tail" `Quick test_journal_torn_tail;
    Alcotest.test_case "journal garbage line" `Quick
      test_journal_garbage_line;
    QCheck_alcotest.to_alcotest prop_escape_roundtrip;
    QCheck_alcotest.to_alcotest prop_escaped_has_no_raw_colon;
    QCheck_alcotest.to_alcotest prop_row_roundtrip;
    QCheck_alcotest.to_alcotest prop_random_table_dump_restore;
  ]
