(* The declarative SLO engine and the freshness tracker: windowed
   verdict edges (no data, exactly at threshold, breach), breach-alert
   dedup through the open-incident set and its re-arm on recovery, and
   the monotonic commit high-water mark behind the staleness gauges. *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let mk () =
  let o = Obs.create () in
  let t = ref 0 in
  Obs.set_clock o (fun () -> !t);
  (o, t)

let objective ?(window = 10_000) ?(threshold = 50) () =
  {
    Obs.Slo.o_name = "lat-p99";
    o_metric = "x_ms";
    o_stat = Obs.Slo.P99;
    o_op = Obs.Slo.Le;
    o_threshold = threshold;
    o_window_ms = window;
  }

let eval1 s =
  match Obs.Slo.evaluate s with
  | [ r ] -> r
  | l -> Alcotest.failf "expected 1 result, got %d" (List.length l)

let verdict r = Obs.Slo.verdict_name r.Obs.Slo.r_verdict

(* An objective over a histogram nobody has observed yet: the absence
   of data is a warning (the pipeline may be broken), never a breach. *)
let test_empty_window_yellow () =
  let o, _ = mk () in
  let s = Obs.Slo.create o in
  Obs.Slo.add s (objective ());
  let r = eval1 s in
  Alcotest.(check int) "no samples" 0 r.Obs.Slo.r_samples;
  Alcotest.(check string) "no data is yellow, not red" "yellow" (verdict r);
  ignore (Obs.Histogram.make o "x_ms");
  let r = eval1 s in
  Alcotest.(check string) "an empty histogram is still yellow" "yellow"
    (verdict r)

let test_threshold_edges () =
  let o, _ = mk () in
  let s = Obs.Slo.create o in
  Obs.Slo.add s (objective ~threshold:50 ());
  let h = Obs.Histogram.make o "x_ms" in
  Obs.Histogram.observe h 10;
  Alcotest.(check string) "well under: green" "green" (verdict (eval1 s));
  (* exactly at the threshold: the objective is met, but any jitter
     breaches it -- warn.  50 sits in the histogram's exact bucket
     range, so the p99 estimate is the value itself. *)
  Obs.Histogram.observe h 50;
  let r = eval1 s in
  Alcotest.(check int) "value is the threshold" 50 r.Obs.Slo.r_value;
  Alcotest.(check string) "exactly-at-threshold warns" "yellow" (verdict r);
  Obs.Histogram.observe h 60;
  Alcotest.(check string) "over: red" "red" (verdict (eval1 s))

let test_breach_dedup_and_rearm () =
  let o, t = mk () in
  let s = Obs.Slo.create o in
  Obs.Slo.add s (objective ~window:10_000 ~threshold:50 ());
  let h = Obs.Histogram.make o "x_ms" in
  let alerts = ref [] in
  let notify m = alerts := m :: !alerts in
  Obs.Slo.tick s;
  Obs.Histogram.observe h 200;
  t := 1_000;
  ignore (Obs.Slo.check s ~notify);
  Alcotest.(check int) "first breach notifies" 1 (List.length !alerts);
  Alcotest.(check bool) "alert names the objective" true
    (contains (List.hd !alerts) "lat-p99");
  t := 2_000;
  ignore (Obs.Slo.check s ~notify);
  Alcotest.(check int) "open incident dedups" 1 (List.length !alerts);
  (* the bad sample ages out of the window: the verdict recovers (to
     yellow -- no data) and the incident closes *)
  t := 5_000;
  Obs.Slo.tick s;
  t := 20_000;
  Obs.Slo.tick s;
  let r =
    match Obs.Slo.check s ~notify with
    | [ r ] -> r
    | l -> Alcotest.failf "expected 1 result, got %d" (List.length l)
  in
  Alcotest.(check string) "breach aged out of the window" "yellow" (verdict r);
  Alcotest.(check int) "recovery does not notify" 1 (List.length !alerts);
  (* a fresh breach after recovery re-alerts *)
  Obs.Histogram.observe h 300;
  t := 21_000;
  ignore (Obs.Slo.check s ~notify);
  Alcotest.(check int) "re-armed after recovery" 2 (List.length !alerts)

let test_freshness_monotonic () =
  let o, t = mk () in
  t := 1_000_000;
  Obs.Freshness.note_commit o ~host:"SUOMI.MIT.EDU" ~commit_s:900;
  Alcotest.(check (option int))
    "staleness from commit" (Some 100)
    (Obs.find_gauge o "prop.host.suomi.mit.edu.staleness_s");
  (* a late replay of an older commit never regresses the high-water *)
  Obs.Freshness.note_commit o ~host:"suomi.mit.edu" ~commit_s:500;
  Alcotest.(check (option int))
    "monotonic" (Some 100)
    (Obs.find_gauge o "prop.host.suomi.mit.edu.staleness_s");
  t := 1_200_000;
  Obs.Freshness.refresh o;
  Alcotest.(check (option int))
    "refresh re-derives from sim time" (Some 300)
    (Obs.find_gauge o "prop.host.suomi.mit.edu.staleness_s");
  (* the staleness gauges feed a Value objective: max over hosts *)
  let s = Obs.Slo.create o in
  Obs.Slo.add s
    {
      Obs.Slo.o_name = "host-staleness";
      o_metric = "prop.host.*.staleness_s";
      o_stat = Obs.Slo.Value;
      o_op = Obs.Slo.Le;
      o_threshold = 200;
      o_window_ms = 0;
    };
  match Obs.Slo.evaluate s with
  | [ r ] ->
      Alcotest.(check int) "one gauge matched" 1 r.Obs.Slo.r_samples;
      Alcotest.(check int) "value is the worst host" 300 r.Obs.Slo.r_value;
      Alcotest.(check string) "stale host is red" "red" (verdict r)
  | l -> Alcotest.failf "expected 1 result, got %d" (List.length l)

let suite =
  [
    Alcotest.test_case "empty window is yellow" `Quick test_empty_window_yellow;
    Alcotest.test_case "threshold edges" `Quick test_threshold_edges;
    Alcotest.test_case "breach-alert dedup and re-arm" `Quick
      test_breach_dedup_and_rearm;
    Alcotest.test_case "freshness high-water and staleness objective" `Quick
      test_freshness_monotonic;
  ]
