(* Shared fixtures for the Moira query-layer tests: a fresh database with
   a deterministic mini-world, plus helpers to run queries as the
   privileged glue, as an admin on every capability ACL, or as an
   ordinary user. *)

type t = {
  clock : int ref;
  mdb : Moira.Mdb.t;
  registry : Moira.Query.registry;
  glue : Moira.Glue.t;
}

let admin = "admin"
let user1 = "ann"
let user2 = "bob"

let must t name args =
  match Moira.Glue.query t.glue ~name args with
  | Ok tuples -> tuples
  | Error code ->
      Alcotest.failf "fixture %s(%s): %s" name (String.concat "," args)
        (Comerr.Com_err.error_message code)

let create () =
  let clock = ref 1_000_000 in
  let mdb = Moira.Mdb.create ~clock:(fun () -> !clock) in
  let registry = Moira.Catalog.make () in
  let glue = Moira.Glue.create ~mdb ~registry () in
  let t = { clock; mdb; registry; glue } in
  (* machines *)
  List.iter
    (fun (m, ty) -> ignore (must t "add_machine" [ m; ty ]))
    [
      ("E40-PO.MIT.EDU", "VAX"); ("CHARON.MIT.EDU", "RT");
      ("NFS-1.MIT.EDU", "VAX"); ("SUOMI.MIT.EDU", "VAX");
      ("W20-001.MIT.EDU", "RT");
    ];
  (* admin + admin list holding every capability *)
  ignore
    (must t "add_user"
       [ admin; "1000"; "/bin/csh"; "Admin"; "Athena"; ""; "1"; "h"; "STAFF" ]);
  ignore
    (must t "add_list"
       [ "moira-admins"; "1"; "0"; "0"; "0"; "0"; "-1"; "USER"; admin;
         "admins" ]);
  ignore (must t "add_member_to_list" [ "moira-admins"; "USER"; admin ]);
  let admins_id = Option.get (Moira.Lookup.list_id mdb "moira-admins") in
  List.iter
    (fun q ->
      Moira.Acl.set_capacl mdb ~query:q.Moira.Query.name
        ~tag:q.Moira.Query.short ~list_id:admins_id)
    (Moira.Catalog.standard ());
  Moira.Acl.set_capacl mdb ~query:"trigger_dcm" ~tag:"tdcm"
    ~list_id:admins_id;
  (* two ordinary users *)
  ignore
    (must t "add_user"
       [ user1; "2001"; "/bin/csh"; "Alpha"; "Ann"; "B"; "1"; "ha"; "1991" ]);
  ignore
    (must t "add_user"
       [ user2; "2002"; "/bin/sh"; "Beta"; "Bob"; ""; "1"; "hb"; "1990" ]);
  (* an NFS partition so filesystems can be added *)
  ignore
    (must t "add_nfsphys"
       [ "NFS-1.MIT.EDU"; "/u1/lockers"; "/dev/ra1c"; "15"; "0"; "50000" ]);
  t

(* Run a query as a (non-privileged) authenticated caller. *)
let as_user t login name args =
  let ctx =
    { Moira.Query.mdb = t.mdb; caller = login; client = "test";
      privileged = false; trace = "" }
  in
  Moira.Query.execute t.registry ctx ~name args

let check_access t login name args =
  let ctx =
    { Moira.Query.mdb = t.mdb; caller = login; client = "test";
      privileged = false; trace = "" }
  in
  Moira.Query.check t.registry ctx ~name args

let as_admin t name args = as_user t admin name args

(* expectation helpers *)
let expect_ok what = function
  | Ok tuples -> tuples
  | Error code ->
      Alcotest.failf "%s failed: %s" what (Comerr.Com_err.error_message code)

let expect_err what expected = function
  | Ok _ -> Alcotest.failf "%s unexpectedly succeeded" what
  | Error code ->
      Alcotest.(check string)
        (what ^ " error")
        (Comerr.Com_err.error_message expected)
        (Comerr.Com_err.error_message code)

let first_field = function
  | (f :: _) :: _ -> f
  | _ -> Alcotest.fail "no tuples returned"
