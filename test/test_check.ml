(* The schema–query cross-checker: clean on the real catalogue and
   generators, loud on seeded drift (misspelled column, bad short,
   duplicate name, stale generator watch). *)

open Moira

let findings_str fs = List.map Check.pp fs

(* -- the real registry is drift-free (the acceptance criterion) -- *)

let test_real_registry_clean () =
  let t = Fix.create () in
  Alcotest.(check (list string))
    "no findings" []
    (findings_str (Check.registry t.Fix.mdb t.Fix.registry))

let test_integrity_query () =
  let t = Fix.create () in
  let rows = Fix.expect_ok "_check_integrity" (Fix.as_user t "ann" "_check_integrity" []) in
  Alcotest.(check (list (list string))) "empty result = invariant holds" [] rows

let test_standard_generators_clean () =
  Alcotest.(check (list string))
    "no findings" []
    (findings_str (Dcm.Manager.check_generators Dcm.Manager.standard_generators))

(* -- seeded drift is caught -- *)

let dummy_access _ _ = Ok ()

let q ?(name = "probe_fixture") ?(short = "prfx") ?(kind = Query.Retrieve)
    ?(inputs = []) ?(outputs = [ "out" ]) handler =
  { Query.name; short; kind; inputs; outputs; check_access = dummy_access;
    handler }

let rules fs = List.sort_uniq compare (List.map (fun f -> f.Check.c_rule) fs)

let test_misspelled_column () =
  let t = Fix.create () in
  (* the classic drift: a retrieve whose projector names a column that
     was renamed away.  Qlib.projector resolves names via
     Schema.index_of, which raises Not_found — the probe must turn that
     into a finding, not an escape. *)
  let bad =
    q ~outputs:[ "login" ] (fun ctx _ ->
        let tbl = Mdb.table ctx.Query.mdb "users" in
        let project = Qlib.projector tbl [ "loginn" ] in
        Ok (List.map (fun (_, row) -> project row) (Relation.Table.select tbl Relation.Pred.True)))
  in
  Alcotest.(check (list string))
    "probe-raise" [ "probe-raise" ]
    (rules (Check.probe_queries t.Fix.mdb [ bad ]))

let test_output_arity_drift () =
  let t = Fix.create () in
  let bad =
    q ~outputs:[ "a"; "b" ] (fun _ _ -> Ok [ [ "only-one" ] ])
  in
  Alcotest.(check (list string))
    "output-arity" [ "output-arity" ]
    (rules (Check.probe_queries t.Fix.mdb [ bad ]))

let test_short_shape () =
  let bad = q ~short:"xy" (fun _ _ -> Ok []) in
  Alcotest.(check (list string))
    "short-shape" [ "short-shape" ]
    (rules (Check.static_queries [ bad ]))

let test_duplicate_names () =
  let a = q ~name:"same_name" ~short:"aaaa" (fun _ _ -> Ok []) in
  let b = q ~name:"same_name" ~short:"bbbb" (fun _ _ -> Ok []) in
  Alcotest.(check (list string))
    "dup-name" [ "dup-name" ]
    (rules (Check.static_queries [ a; b ]))

let test_mutation_with_outputs () =
  let bad = q ~kind:Query.Update ~outputs:[ "oops" ] (fun _ _ -> Ok []) in
  Alcotest.(check (list string))
    "kind-outputs" [ "kind-outputs" ]
    (rules (Check.static_queries [ bad ]))

let test_capacl_unknown_query () =
  let t = Fix.create () in
  Acl.set_capacl t.Fix.mdb ~query:"no_such_query_handle" ~tag:"nsqh"
    ~list_id:1;
  let fs = Check.capacls t.Fix.mdb (Query.all t.Fix.registry) in
  Alcotest.(check (list string)) "capacl-query" [ "capacl-query" ] (rules fs)

let empty_output _ = { Dcm.Gen.common = []; per_host = [] }

let test_generator_unknown_table () =
  let bad =
    Dcm.Gen.monolithic ~service:"FIXTURE"
      ~watches:[ Dcm.Gen.watch "no_such_relation" ]
      empty_output
  in
  Alcotest.(check (list string))
    "watch-table" [ "watch-table" ]
    (rules (Dcm.Manager.check_generators [ bad ]))

let test_generator_non_modtime_column () =
  (* login is a string column: watching it for modtimes is a type bug *)
  let bad =
    Dcm.Gen.monolithic ~service:"FIXTURE"
      ~watches:[ Dcm.Gen.watch ~columns:[ "login" ] "users" ]
      empty_output
  in
  Alcotest.(check (list string))
    "watch-column" [ "watch-column" ]
    (rules (Dcm.Manager.check_generators [ bad ]))

let suite =
  [
    Alcotest.test_case "real registry clean" `Quick test_real_registry_clean;
    Alcotest.test_case "_check_integrity query" `Quick test_integrity_query;
    Alcotest.test_case "standard generators clean" `Quick
      test_standard_generators_clean;
    Alcotest.test_case "misspelled column caught" `Quick
      test_misspelled_column;
    Alcotest.test_case "output arity drift caught" `Quick
      test_output_arity_drift;
    Alcotest.test_case "short shape" `Quick test_short_shape;
    Alcotest.test_case "duplicate names" `Quick test_duplicate_names;
    Alcotest.test_case "mutation with outputs" `Quick
      test_mutation_with_outputs;
    Alcotest.test_case "capacl names unknown query" `Quick
      test_capacl_unknown_query;
    Alcotest.test_case "generator unknown table" `Quick
      test_generator_unknown_table;
    Alcotest.test_case "generator non-modtime column" `Quick
      test_generator_non_modtime_column;
  ]
