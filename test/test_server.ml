(* The Moira server and application library over the simulated network:
   connect, authenticate, query, access checks (section 5.3-5.6). *)

type world = {
  tb : Workload.Testbed.t;
  ws : string;  (* a workstation to run clients on *)
}

let make () =
  let tb = Workload.Testbed.create () in
  { tb; ws = tb.Workload.Testbed.built.Workload.Population.workstation_machines.(0) }

let moira w = w.tb.Workload.Testbed.built.Workload.Population.moira_machine

let test_connect_disconnect () =
  let w = make () in
  let c = Workload.Testbed.client w.tb ~src:w.ws in
  Alcotest.(check int) "connect" 0 (Moira.Mr_client.mr_connect c ~dst:(moira w));
  Alcotest.(check bool) "connected" true (Moira.Mr_client.is_connected c);
  Alcotest.(check int) "double connect refused" Moira.Mr_err.already_connected
    (Moira.Mr_client.mr_connect c ~dst:(moira w));
  Alcotest.(check int) "disconnect" 0 (Moira.Mr_client.mr_disconnect c);
  Alcotest.(check int) "double disconnect" Moira.Mr_err.not_connected
    (Moira.Mr_client.mr_disconnect c)

let test_connect_failures () =
  let w = make () in
  let c = Workload.Testbed.client w.tb ~src:w.ws in
  Alcotest.(check int) "unknown host" Moira.Mr_err.cant_connect
    (Moira.Mr_client.mr_connect c ~dst:"NOWHERE.MIT.EDU");
  (* a host that exists but runs no moira server *)
  Alcotest.(check int) "no service" Moira.Mr_err.cant_connect
    (Moira.Mr_client.mr_connect c ~dst:w.ws)

let test_noop () =
  let w = make () in
  let c = Workload.Testbed.client w.tb ~src:w.ws in
  Alcotest.(check int) "noop unconnected" Moira.Mr_err.not_connected
    (Moira.Mr_client.mr_noop c);
  ignore (Moira.Mr_client.mr_connect c ~dst:(moira w));
  Alcotest.(check int) "noop" 0 (Moira.Mr_client.mr_noop c)

let test_auth_and_query () =
  let w = make () in
  let c = Workload.Testbed.admin_client w.tb ~src:w.ws in
  (* an admin query over RPC *)
  match Moira.Mr_client.mr_query_list c ~name:"get_all_active_logins" [] with
  | Ok rows ->
      Alcotest.(check bool) "users returned" true (List.length rows > 10)
  | Error code -> Alcotest.fail (Comerr.Com_err.error_message code)

let test_auth_failures () =
  let w = make () in
  let c = Workload.Testbed.client w.tb ~src:w.ws in
  ignore (Moira.Mr_client.mr_connect c ~dst:(moira w));
  Alcotest.(check int) "bad password" Krb.Krb_err.bad_password
    (Moira.Mr_client.mr_auth c ~kdc:w.tb.Workload.Testbed.kdc
       ~principal:"admin" ~password:"wrong" ~clientname:"test");
  Alcotest.(check int) "unknown principal" Krb.Krb_err.princ_unknown
    (Moira.Mr_client.mr_auth c ~kdc:w.tb.Workload.Testbed.kdc
       ~principal:"nobody" ~password:"x" ~clientname:"test")

let test_unauthenticated_query_denied () =
  let w = make () in
  let c = Workload.Testbed.client w.tb ~src:w.ws in
  ignore (Moira.Mr_client.mr_connect c ~dst:(moira w));
  (* reads open to everybody still work *)
  (match Moira.Mr_client.mr_query_list c ~name:"get_machine" [ "*" ] with
  | Ok _ -> ()
  | Error code -> Alcotest.fail (Comerr.Com_err.error_message code));
  (* privileged queries do not *)
  match Moira.Mr_client.mr_query_list c ~name:"get_all_logins" [] with
  | Error code when code = Moira.Mr_err.perm -> ()
  | _ -> Alcotest.fail "anonymous get_all_logins allowed"

let test_ordinary_user_self_service () =
  let w = make () in
  let login = w.tb.Workload.Testbed.built.Workload.Population.logins.(3) in
  let c = Workload.Testbed.user_client w.tb ~src:w.ws ~login in
  (* she changes her own shell over the wire *)
  (match
     Moira.Mr_client.mr_query c ~name:"update_user_shell"
       [ login; "/bin/tcsh" ] ~callback:(fun _ -> ())
   with
  | 0 -> ()
  | code -> Alcotest.fail (Comerr.Com_err.error_message code));
  (* but not someone else's *)
  let other = w.tb.Workload.Testbed.built.Workload.Population.logins.(4) in
  Alcotest.(check int) "other denied" Moira.Mr_err.perm
    (Moira.Mr_client.mr_query c ~name:"update_user_shell"
       [ other; "/bin/evil" ] ~callback:(fun _ -> ()))

let test_mr_access () =
  let w = make () in
  let login = w.tb.Workload.Testbed.built.Workload.Population.logins.(0) in
  let c = Workload.Testbed.user_client w.tb ~src:w.ws ~login in
  Alcotest.(check int) "access to own shell change" 0
    (Moira.Mr_client.mr_access c ~name:"update_user_shell"
       [ login; "/bin/sh" ]);
  Alcotest.(check int) "access to add_machine denied" Moira.Mr_err.perm
    (Moira.Mr_client.mr_access c ~name:"add_machine" [ "X.MIT.EDU"; "VAX" ]);
  (* access does not execute: machine not created even for admin *)
  let a = Workload.Testbed.admin_client w.tb ~src:w.ws in
  Alcotest.(check int) "admin access ok" 0
    (Moira.Mr_client.mr_access a ~name:"add_machine" [ "X.MIT.EDU"; "VAX" ]);
  match Moira.Mr_client.mr_query_list a ~name:"get_machine" [ "X.MIT.EDU" ] with
  | Error code when code = Moira.Mr_err.no_match -> ()
  | _ -> Alcotest.fail "access executed the query"

let test_callback_per_tuple () =
  let w = make () in
  let c = Workload.Testbed.admin_client w.tb ~src:w.ws in
  let count = ref 0 in
  let code =
    Moira.Mr_client.mr_query c ~name:"get_all_active_logins" []
      ~callback:(fun tuple ->
        incr count;
        Alcotest.(check int) "6 fields" 6 (List.length tuple))
  in
  Alcotest.(check int) "ok" 0 code;
  Alcotest.(check bool) "many tuples" true (!count > 10)

let test_list_users_builtin () =
  let w = make () in
  let c = Workload.Testbed.admin_client w.tb ~src:w.ws in
  match Moira.Mr_client.mr_query_list c ~name:"_list_users" [] with
  | Ok rows ->
      Alcotest.(check bool) "at least this connection" true
        (List.length rows >= 1);
      let mine =
        List.find_opt (fun row -> List.nth row 0 = "admin") rows
      in
      (match mine with
      | Some row ->
          Alcotest.(check string) "peer host" w.ws (List.nth row 1)
      | None -> Alcotest.fail "admin connection not listed")
  | Error code -> Alcotest.fail (Comerr.Com_err.error_message code)

let test_journal_records_rpc_changes () =
  let w = make () in
  let login = w.tb.Workload.Testbed.built.Workload.Population.logins.(0) in
  let c = Workload.Testbed.user_client w.tb ~src:w.ws ~login in
  let j = Moira.Mdb.journal w.tb.Workload.Testbed.mdb in
  let before = Relation.Journal.length j in
  ignore
    (Moira.Mr_client.mr_query c ~name:"update_user_shell"
       [ login; "/bin/rc" ] ~callback:(fun _ -> ()));
  let entries = Relation.Journal.entries j in
  let last = List.nth entries (List.length entries - 1) in
  Alcotest.(check bool) "journal grew" true
    (Relation.Journal.length j > before);
  Alcotest.(check string) "who" login last.Relation.Journal.who;
  Alcotest.(check string) "query" "update_user_shell"
    last.Relation.Journal.query

(* The access cache of section 5.5: repeated Access requests are served
   from the cache, and any committed write flushes it. *)
let test_access_cache () =
  let tb = Workload.Testbed.create ~access_cache:true () in
  let ws = tb.Workload.Testbed.built.Workload.Population.workstation_machines.(0) in
  let login = tb.Workload.Testbed.built.Workload.Population.logins.(0) in
  let c = Workload.Testbed.user_client tb ~src:ws ~login in
  let args = [ login; "/bin/sh" ] in
  let stats () =
    Moira.Mr_server.access_cache_stats tb.Workload.Testbed.server
  in
  ignore (Moira.Mr_client.mr_access c ~name:"update_user_shell" args);
  ignore (Moira.Mr_client.mr_access c ~name:"update_user_shell" args);
  ignore (Moira.Mr_client.mr_access c ~name:"update_user_shell" args);
  Alcotest.(check int) "one miss" 1 (stats ()).Moira.Mr_server.misses;
  Alcotest.(check int) "two hits" 2 (stats ()).Moira.Mr_server.hits;
  (* the cached verdict matches the computed one *)
  Alcotest.(check int) "still allowed" 0
    (Moira.Mr_client.mr_access c ~name:"update_user_shell" args);
  (* a committed write flushes the cache *)
  ignore
    (Moira.Mr_client.mr_query c ~name:"update_user_shell" args
       ~callback:(fun _ -> ()));
  Alcotest.(check int) "flushed" 1 (stats ()).Moira.Mr_server.invalidations;
  ignore (Moira.Mr_client.mr_access c ~name:"update_user_shell" args);
  Alcotest.(check int) "miss after flush" 2 (stats ()).Moira.Mr_server.misses

let test_access_cache_correct_after_acl_change () =
  let tb = Workload.Testbed.create ~access_cache:true () in
  let ws = tb.Workload.Testbed.built.Workload.Population.workstation_machines.(0) in
  let login = tb.Workload.Testbed.built.Workload.Population.logins.(1) in
  let admin = Workload.Testbed.admin_client tb ~src:ws in
  (* a list governed by its own membership *)
  ignore
    (Moira.Mr_client.mr_query admin ~name:"add_list"
       [ "club"; "1"; "0"; "0"; "1"; "0"; "-1"; "LIST"; "club"; "x" ]
       ~callback:(fun _ -> ()));
  let u = Workload.Testbed.user_client tb ~src:ws ~login in
  let member_args = [ "club"; "USER"; login ] in
  (* denied and cached *)
  Alcotest.(check int) "denied" Moira.Mr_err.perm
    (Moira.Mr_client.mr_access u ~name:"add_member_to_list" member_args);
  (* the admin puts the user on the ACE list — a write, so the cache is
     flushed, and the next Access recomputes and allows *)
  (match
     Moira.Mr_client.mr_query admin ~name:"add_member_to_list" member_args
       ~callback:(fun _ -> ())
   with
  | 0 -> ()
  | c -> Alcotest.fail (Comerr.Com_err.error_message c));
  Alcotest.(check int) "allowed after ACL change" 0
    (Moira.Mr_client.mr_access u ~name:"add_member_to_list"
       [ "club"; "USER"; login ])

let test_server_crash_aborts_connection () =
  let w = make () in
  let c = Workload.Testbed.admin_client w.tb ~src:w.ws in
  Netsim.Host.crash (Workload.Testbed.host w.tb (moira w));
  Alcotest.(check int) "query aborts" Moira.Mr_err.aborted
    (Moira.Mr_client.mr_noop c);
  Alcotest.(check bool) "client marks closed" false
    (Moira.Mr_client.is_connected c)

let suite =
  [
    Alcotest.test_case "connect/disconnect" `Quick test_connect_disconnect;
    Alcotest.test_case "connect failures" `Quick test_connect_failures;
    Alcotest.test_case "noop" `Quick test_noop;
    Alcotest.test_case "auth + query" `Quick test_auth_and_query;
    Alcotest.test_case "auth failures" `Quick test_auth_failures;
    Alcotest.test_case "anonymous denied" `Quick
      test_unauthenticated_query_denied;
    Alcotest.test_case "self service over RPC" `Quick
      test_ordinary_user_self_service;
    Alcotest.test_case "mr_access" `Quick test_mr_access;
    Alcotest.test_case "callback per tuple" `Quick test_callback_per_tuple;
    Alcotest.test_case "_list_users" `Quick test_list_users_builtin;
    Alcotest.test_case "journal records changes" `Quick
      test_journal_records_rpc_changes;
    Alcotest.test_case "server crash aborts" `Quick
      test_server_crash_aborts_connection;
    Alcotest.test_case "access cache" `Quick test_access_cache;
    Alcotest.test_case "access cache vs ACL change" `Quick
      test_access_cache_correct_after_acl_change;
  ]
