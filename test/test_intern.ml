(* The string intern pool: hash-consed row atoms, physical sharing that
   survives the recovery paths (backup restore, journal replay), and the
   sorted-view delta merge the pool's compact rows pay for. *)

open Relation

let schema =
  Schema.make ~name:"people"
    [
      { Schema.cname = "name"; ctype = Value.TStr };
      { Schema.cname = "age"; ctype = Value.TInt };
      { Schema.cname = "shell"; ctype = Value.TStr };
    ]

let fresh_table ?(indexed = [ "name"; "age" ]) () =
  let clock = ref 100 in
  Table.create ~indexed ~clock:(fun () -> !clock) schema

(* a physically fresh copy: equal contents, distinct heap block *)
let copy_string s = String.init (String.length s) (String.get s)

(* --- the pool itself --- *)

let prop_roundtrip =
  QCheck.Test.make ~name:"intern: id/of_id roundtrip, share dedups"
    ~count:200
    QCheck.(string_of_size (Gen.int_range 0 30))
    (fun s ->
      let c = Intern.share s in
      c = s
      && Intern.of_id (Intern.id s) = Some s
      (* a fresh copy of the same bytes maps to the same heap string *)
      && Intern.share (copy_string s) == c)

let test_value_boxes () =
  Alcotest.(check bool) "small ints share a box" true
    (Intern.value (Value.Int 5) == Intern.value (Value.Int 5));
  Alcotest.(check bool) "bools share a box" true
    (Intern.value (Value.Bool true) == Intern.value (Value.Bool true));
  let big = Value.Int 123_456_789 in
  Alcotest.(check bool) "big ints pass through unchanged" true
    (Intern.value big == big);
  Alcotest.(check bool) "str boxes dedup across copies" true
    (Intern.value (Value.Str (copy_string "zigzag"))
    == Intern.value (Value.Str (copy_string "zigzag")))

let test_insert_interns_rows () =
  let t = fresh_table () in
  let r1 =
    Table.insert t
      [| Value.Str (copy_string "ann"); Value.Int 20;
         Value.Str (copy_string "/bin/csh") |]
  in
  let r2 =
    Table.insert t
      [| Value.Str (copy_string "bob"); Value.Int 21;
         Value.Str (copy_string "/bin/csh") |]
  in
  match (Table.get t r1, Table.get t r2) with
  | Some a, Some b ->
      Alcotest.(check bool) "equal cells share one box" true
        (a.(2) == b.(2));
      Alcotest.(check bool) "distinct cells do not" true (a.(0) != b.(0))
  | _ -> Alcotest.fail "inserted rows missing"

let test_update_interns_rows () =
  let t = fresh_table () in
  ignore (Table.insert t [| Value.Str "ann"; Value.Int 20; Value.Str "/bin/csh" |]);
  ignore (Table.insert t [| Value.Str "bob"; Value.Int 21; Value.Str "/bin/sh" |]);
  ignore
    (Table.set_fields t (Pred.eq_str "name" "bob")
       [ ("shell", Value.Str (copy_string "/bin/csh")) ]);
  let cell name =
    match Table.select_one t (Pred.eq_str "name" name) with
    | Some (_, row) -> row.(2)
    | None -> Alcotest.fail (name ^ " missing")
  in
  Alcotest.(check bool) "updated cell joins the shared box" true
    (cell "ann" == cell "bob")

(* --- sharing survives the recovery paths --- *)

let test_backup_restore_preserves_sharing () =
  let t = fresh_table () in
  for i = 0 to 9 do
    ignore
      (Table.insert t
         [| Value.Str (Printf.sprintf "u%d" i); Value.Int (20 + i);
            Value.Str (copy_string "/bin/csh") |])
  done;
  let dumped = Backup.dump_table t in
  let t2 = fresh_table () in
  Alcotest.(check int) "all rows restored" 10 (Backup.restore_table t2 dumped);
  Alcotest.(check string) "bytes roundtrip" dumped (Backup.dump_table t2);
  match
    ( Table.select_one t2 (Pred.eq_str "name" "u0"),
      Table.select_one t2 (Pred.eq_str "name" "u7") )
  with
  | Some (_, a), Some (_, b) ->
      Alcotest.(check bool) "restored rows share interned cells" true
        (a.(2) == b.(2))
  | _ -> Alcotest.fail "restored rows missing"

let test_journal_replay_preserves_sharing () =
  let j = Journal.create () in
  List.iter
    (fun (time, login) ->
      Journal.append j
        {
          Journal.time;
          who = copy_string "admin";
          client = copy_string "moira";
          query = copy_string "update_user_shell";
          ctx = "";
          args = [ login; "/bin/sh" ];
        })
    [ (10, "ann"); (20, "bob"); (30, "cyn") ];
  let shared_who es =
    match es with
    | a :: rest ->
        List.for_all (fun e -> e.Journal.who == a.Journal.who) rest
    | [] -> false
  in
  Alcotest.(check bool) "appended entries share who" true
    (shared_who (Journal.entries j));
  (* the serialize/parse recovery path re-interns on append *)
  let j2 = Journal.of_lines (Journal.to_lines j) in
  Alcotest.(check int) "replayed length" 3 (Journal.length j2);
  Alcotest.(check bool) "parsed entries share who" true
    (shared_who (Journal.entries j2));
  Alcotest.(check bool) "and share with the pool's canonical copy" true
    ((List.hd (Journal.entries j2)).Journal.who == Intern.share "admin")

(* --- the sorted-view delta merge --- *)

let counter name = Option.value (Obs.find_counter Obs.default name) ~default:0

(* reference: unindexed full evaluation *)
let naive t p =
  List.rev
    (Table.fold t ~init:[] ~f:(fun acc id row ->
         if Pred.eval (Table.schema t) p row then (id, row) :: acc else acc))

let age_window lo hi =
  Pred.And (Pred.Ge ("age", Value.Int lo), Pred.Lt ("age", Value.Int hi))

let test_sorted_merge_after_small_change () =
  let t = fresh_table () in
  for i = 0 to 199 do
    ignore
      (Table.insert t
         [| Value.Str (Printf.sprintf "u%03d" i); Value.Int (i mod 50);
            Value.Str "/bin/csh" |])
  done;
  let q = age_window 10 20 in
  (* first range query builds the sorted view from scratch *)
  Alcotest.(check bool) "initial range correct" true
    (Plan.select t q = naive t q);
  let merges0 = counter "table.sorted.merge" in
  let rebuilds0 = counter "table.sorted.rebuild" in
  (* touch a handful of keys: update, delete, insert *)
  ignore
    (Table.set_fields t (Pred.eq_str "name" "u007") [ ("age", Value.Int 11) ]);
  ignore (Table.delete t (Pred.eq_str "name" "u013"));
  ignore (Table.insert t [| Value.Str "zed"; Value.Int 15; Value.Str "/bin/sh" |]);
  Alcotest.(check bool) "merged range correct" true
    (Plan.select t q = naive t q);
  Alcotest.(check bool) "took the merge path" true
    (counter "table.sorted.merge" > merges0);
  Alcotest.(check int) "no full rebuild" rebuilds0
    (counter "table.sorted.rebuild");
  (* and the merged view keeps answering correctly as changes continue *)
  ignore (Table.delete t (Pred.eq_str "name" "zed"));
  Alcotest.(check bool) "still correct after delete" true
    (Plan.select t q = naive t q)

let test_sorted_overflow_falls_back_to_rebuild () =
  let t = fresh_table () in
  for i = 0 to 99 do
    ignore
      (Table.insert t
         [| Value.Str (Printf.sprintf "u%04d" i); Value.Int i;
            Value.Str "/bin/csh" |])
  done;
  let q = age_window 0 5_000 in
  ignore (Plan.select t q);
  (* dirty more distinct keys than the tracker's cap: the next view must
     rebuild (merge would need the discarded delta set) *)
  for i = 100 to 4_400 do
    ignore
      (Table.insert t
         [| Value.Str (Printf.sprintf "u%04d" i); Value.Int i;
            Value.Str "/bin/csh" |])
  done;
  let rebuilds0 = counter "table.sorted.rebuild" in
  Alcotest.(check bool) "overflowed range correct" true
    (Plan.select t q = naive t q);
  Alcotest.(check bool) "took the rebuild path" true
    (counter "table.sorted.rebuild" > rebuilds0)

let test_sorted_after_clear () =
  let t = fresh_table () in
  for i = 0 to 49 do
    ignore
      (Table.insert t
         [| Value.Str (Printf.sprintf "u%02d" i); Value.Int i;
            Value.Str "/bin/csh" |])
  done;
  let q = age_window 0 100 in
  Alcotest.(check int) "before clear" 50 (List.length (Plan.select t q));
  Table.clear t;
  ignore (Table.insert t [| Value.Str "solo"; Value.Int 7; Value.Str "/bin/sh" |]);
  (* clear discards delta tracking wholesale: the view must not resurrect
     pre-clear rows via a stale merge *)
  match Plan.select t q with
  | [ (_, row) ] ->
      Alcotest.(check string) "only the post-clear row" "solo"
        (Value.str row.(0))
  | l -> Alcotest.failf "expected 1 row after clear, got %d" (List.length l)

let prop_sorted_merge_model =
  (* random edit scripts over an indexed table: every range answer must
     match naive evaluation no matter how merges and rebuilds interleave *)
  QCheck.Test.make ~name:"sorted view: merge path matches naive eval"
    ~count:60
    QCheck.(
      list_of_size (Gen.int_range 1 40)
        (triple (int_range 0 2) (int_range 0 19) (int_range 0 30)))
    (fun script ->
      let t = fresh_table () in
      for i = 0 to 19 do
        ignore
          (Table.insert t
             [| Value.Str (Printf.sprintf "u%02d" i); Value.Int i;
                Value.Str "/bin/csh" |])
      done;
      let q = age_window 5 25 in
      ignore (Plan.select t q);
      List.for_all
        (fun (op, who, age) ->
          (match op with
          | 0 ->
              ignore
                (Table.insert t
                   [| Value.Str (Printf.sprintf "n%02d-%02d" who age);
                      Value.Int age; Value.Str "/bin/sh" |])
          | 1 ->
              ignore
                (Table.set_fields t
                   (Pred.eq_str "name" (Printf.sprintf "u%02d" who))
                   [ ("age", Value.Int age) ])
          | _ ->
              ignore
                (Table.delete t
                   (Pred.eq_str "name" (Printf.sprintf "u%02d" who))));
          Plan.select t q = naive t q)
        script)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_roundtrip;
    Alcotest.test_case "value boxes dedup" `Quick test_value_boxes;
    Alcotest.test_case "insert interns rows" `Quick test_insert_interns_rows;
    Alcotest.test_case "update interns rows" `Quick test_update_interns_rows;
    Alcotest.test_case "sharing survives backup restore" `Quick
      test_backup_restore_preserves_sharing;
    Alcotest.test_case "sharing survives journal replay" `Quick
      test_journal_replay_preserves_sharing;
    Alcotest.test_case "sorted merge after small change" `Quick
      test_sorted_merge_after_small_change;
    Alcotest.test_case "sorted overflow rebuilds" `Quick
      test_sorted_overflow_falls_back_to_rebuild;
    Alcotest.test_case "sorted view after clear" `Quick
      test_sorted_after_clear;
    QCheck_alcotest.to_alcotest prop_sorted_merge_model;
  ]
