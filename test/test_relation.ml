(* The relational engine: values, globs, schemas, predicates, tables. *)

open Relation

let v_int i = Value.Int i
let v_str s = Value.Str s
let v_bool b = Value.Bool b

let sample_schema =
  Schema.make ~name:"people"
    [
      { Schema.cname = "name"; ctype = Value.TStr };
      { Schema.cname = "age"; ctype = Value.TInt };
      { Schema.cname = "active"; ctype = Value.TBool };
    ]

let fresh_table ?(indexed = [ "name" ]) () =
  let clock = ref 100 in
  (Table.create ~indexed ~clock:(fun () -> !clock) sample_schema, clock)

let row name age active = [| v_str name; v_int age; v_bool active |]

(* --- Value --- *)

let test_value_conversions () =
  Alcotest.(check string) "int" "42" (Value.to_string (v_int 42));
  Alcotest.(check string) "bool true" "1" (Value.to_string (v_bool true));
  Alcotest.(check string) "bool false" "0" (Value.to_string (v_bool false));
  Alcotest.(check string) "str" "x:y" (Value.to_string (v_str "x:y"));
  Alcotest.(check bool) "of_string int" true
    (Value.equal (Value.of_string Value.TInt " 7 ") (v_int 7));
  Alcotest.(check bool) "of_string bool" true
    (Value.equal (Value.of_string Value.TBool "1") (v_bool true));
  Alcotest.check_raises "bad int" (Failure "value: \"zap\" is not an integer")
    (fun () -> ignore (Value.of_string Value.TInt "zap"))

let test_value_projections () =
  Alcotest.(check int) "bool as int" 1 (Value.int (v_bool true));
  Alcotest.(check bool) "int as bool" true (Value.bool (v_int 7));
  Alcotest.check_raises "str of int"
    (Invalid_argument "Value.str: not a string") (fun () ->
      ignore (Value.str (v_int 1)))

(* --- Glob --- *)

let test_glob_basics () =
  let m p s = Glob.matches ~pattern:p s in
  Alcotest.(check bool) "exact" true (m "abc" "abc");
  Alcotest.(check bool) "star any" true (m "*" "anything");
  Alcotest.(check bool) "star empty" true (m "*" "");
  Alcotest.(check bool) "prefix" true (m "ab*" "abcdef");
  Alcotest.(check bool) "suffix" true (m "*def" "abcdef");
  Alcotest.(check bool) "infix" true (m "a*f" "abcdef");
  Alcotest.(check bool) "question" true (m "a?c" "abc");
  Alcotest.(check bool) "question exact len" false (m "a?c" "abbc");
  Alcotest.(check bool) "no match" false (m "abc" "abd");
  Alcotest.(check bool) "multiple stars" true (m "*b*d*" "abcd");
  Alcotest.(check bool) "trailing star backtrack" true (m "a*bc" "axxbybc")

let test_glob_case_fold () =
  Alcotest.(check bool) "fold" true
    (Glob.matches ~case_fold:true ~pattern:"suomi*" "SUOMI.MIT.EDU");
  Alcotest.(check bool) "no fold" false
    (Glob.matches ~pattern:"suomi*" "SUOMI.MIT.EDU")

let test_is_pattern () =
  Alcotest.(check bool) "star" true (Glob.is_pattern "a*");
  Alcotest.(check bool) "question" true (Glob.is_pattern "a?");
  Alcotest.(check bool) "plain" false (Glob.is_pattern "abc")

(* --- Schema --- *)

let test_schema () =
  Alcotest.(check int) "arity" 3 (Schema.arity sample_schema);
  Alcotest.(check int) "index_of" 1 (Schema.index_of sample_schema "age");
  Alcotest.(check bool) "mem" true (Schema.mem sample_schema "active");
  Alcotest.(check bool) "not mem" false (Schema.mem sample_schema "ghost");
  Alcotest.check_raises "duplicate col"
    (Invalid_argument "Schema.make: duplicate column \"a\" in \"bad\"")
    (fun () ->
      ignore
        (Schema.make ~name:"bad"
           [
             { Schema.cname = "a"; ctype = Value.TInt };
             { Schema.cname = "a"; ctype = Value.TStr };
           ]))

let test_schema_check_tuple () =
  Schema.check_tuple sample_schema (row "x" 1 true);
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "people: tuple arity 2, expected 3") (fun () ->
      Schema.check_tuple sample_schema [| v_str "x"; v_int 1 |]);
  Alcotest.check_raises "type mismatch"
    (Invalid_argument "people.age: expected int, got string") (fun () ->
      Schema.check_tuple sample_schema [| v_str "x"; v_str "y"; v_bool true |])

(* --- Pred --- *)

let test_pred_eval () =
  let t = row "ann" 30 true in
  let ev p = Pred.eval sample_schema p t in
  Alcotest.(check bool) "eq str" true (ev (Pred.eq_str "name" "ann"));
  Alcotest.(check bool) "eq int" true (ev (Pred.eq_int "age" 30));
  Alcotest.(check bool) "eq bool" true (ev (Pred.eq_bool "active" true));
  Alcotest.(check bool) "glob" true (ev (Pred.Glob ("name", "a*")));
  Alcotest.(check bool) "lt" true (ev (Pred.Lt ("age", v_int 31)));
  Alcotest.(check bool) "ge" true (ev (Pred.Ge ("age", v_int 30)));
  Alcotest.(check bool) "and" false
    (ev (Pred.And (Pred.eq_str "name" "ann", Pred.eq_int "age" 31)));
  Alcotest.(check bool) "or" true
    (ev (Pred.Or (Pred.eq_str "name" "bob", Pred.eq_int "age" 30)));
  Alcotest.(check bool) "not" true (ev (Pred.Not (Pred.eq_int "age" 31)));
  Alcotest.(check bool) "conj empty" true (ev (Pred.conj []));
  Alcotest.(check bool) "disj empty" false (ev (Pred.disj []))

let test_pred_name_match () =
  match Pred.name_match "name" "ab*" with
  | Pred.Glob ("name", "ab*") -> (
      match Pred.name_match "name" "abc" with
      | Pred.Eq ("name", Value.Str "abc") -> ()
      | _ -> Alcotest.fail "expected Eq for plain")
  | _ -> Alcotest.fail "expected Glob for pattern"

let test_pred_indexable () =
  let p =
    Pred.And
      (Pred.eq_str "name" "x", Pred.Or (Pred.eq_int "age" 1, Pred.True))
  in
  Alcotest.(check int) "one indexable eq" 1
    (List.length (Pred.indexable_eqs p))

(* --- Table --- *)

let test_table_insert_select () =
  let t, _ = fresh_table () in
  let _ = Table.insert t (row "ann" 30 true) in
  let _ = Table.insert t (row "bob" 40 false) in
  Alcotest.(check int) "cardinal" 2 (Table.cardinal t);
  Alcotest.(check int) "select all" 2
    (List.length (Table.select t Pred.True));
  let hits = Table.select t (Pred.eq_str "name" "ann") in
  Alcotest.(check int) "select one" 1 (List.length hits);
  (match hits with
  | [ (_, r) ] -> Alcotest.(check int) "age" 30 (Value.int r.(1))
  | _ -> Alcotest.fail "select")

let test_table_select_one () =
  let t, _ = fresh_table () in
  let _ = Table.insert t (row "ann" 30 true) in
  let _ = Table.insert t (row "ann" 31 true) in
  Alcotest.(check bool) "ambiguous is None" true
    (Table.select_one t (Pred.eq_str "name" "ann") = None);
  Alcotest.(check bool) "missing is None" true
    (Table.select_one t (Pred.eq_str "name" "zed") = None)

let test_table_update_delete () =
  let t, _ = fresh_table () in
  let _ = Table.insert t (row "ann" 30 true) in
  let _ = Table.insert t (row "bob" 40 false) in
  let n =
    Table.set_fields t (Pred.eq_str "name" "ann") [ ("age", v_int 99) ]
  in
  Alcotest.(check int) "updated 1" 1 n;
  (match Table.select_one t (Pred.eq_str "name" "ann") with
  | Some (_, r) -> Alcotest.(check int) "new age" 99 (Value.int r.(1))
  | None -> Alcotest.fail "gone");
  let d = Table.delete t (Pred.eq_str "name" "bob") in
  Alcotest.(check int) "deleted 1" 1 d;
  Alcotest.(check int) "remaining" 1 (Table.cardinal t)

let test_table_index_consistency_after_rename () =
  let t, _ = fresh_table () in
  let _ = Table.insert t (row "ann" 30 true) in
  ignore (Table.set_fields t (Pred.eq_str "name" "ann") [ ("name", v_str "zoe") ]);
  Alcotest.(check int) "old key gone" 0
    (Table.count t (Pred.eq_str "name" "ann"));
  Alcotest.(check int) "new key found" 1
    (Table.count t (Pred.eq_str "name" "zoe"))

let test_table_stats () =
  let t, clock = fresh_table () in
  let _ = Table.insert t (row "ann" 30 true) in
  clock := 200;
  ignore (Table.set_fields t Pred.True [ ("age", v_int 1) ]);
  let s = Table.stats t in
  Alcotest.(check int) "appends" 1 s.Table.appends;
  Alcotest.(check int) "updates" 1 s.Table.updates;
  Alcotest.(check int) "modtime follows clock" 200 s.Table.modtime;
  clock := 300;
  ignore (Table.delete t Pred.True);
  Alcotest.(check int) "del_time" 300 (Table.stats t).Table.del_time

let test_table_col_upper_bound () =
  let t, _ = fresh_table () in
  Alcotest.(check bool) "empty is min_int" true
    (Table.col_upper_bound t "age" = min_int);
  ignore (Table.insert t (row "ann" 30 true));
  ignore (Table.insert t (row "bob" 41 true));
  Alcotest.(check int) "max of inserts" 41 (Table.col_upper_bound t "age");
  ignore (Table.set_fields t (Pred.eq_str "name" "ann") [ ("age", v_int 99) ]);
  Alcotest.(check int) "update raises it" 99 (Table.col_upper_bound t "age");
  ignore (Table.delete t (Pred.eq_str "name" "ann"));
  (* an upper bound, not a max: deletions never lower it *)
  Alcotest.(check int) "never lowered" 99 (Table.col_upper_bound t "age")

let test_table_changelog () =
  let t, _ = fresh_table () in
  let delta = Alcotest.(option (list int)) in
  let c0 = Table.change_cursor t in
  Alcotest.check delta "empty delta" (Some []) (Table.changes_since t ~cursor:c0);
  let r1 = Table.insert t (row "ann" 30 true) in
  let r2 = Table.insert t (row "bob" 40 true) in
  Alcotest.check delta "inserts" (Some [ r1; r2 ])
    (Table.changes_since t ~cursor:c0);
  let c1 = Table.change_cursor t in
  ignore (Table.set_fields t (Pred.eq_str "name" "ann") [ ("age", v_int 31) ]);
  ignore (Table.set_fields t (Pred.eq_str "name" "ann") [ ("age", v_int 32) ]);
  Alcotest.check delta "updates deduped" (Some [ r1 ])
    (Table.changes_since t ~cursor:c1);
  let c2 = Table.change_cursor t in
  ignore (Table.delete t (Pred.eq_str "name" "bob"));
  Alcotest.check delta "deletion appears" (Some [ r2 ])
    (Table.changes_since t ~cursor:c2);
  (* overflow the bounded log: the delta is unknown, a fresh cursor works *)
  let c3 = Table.change_cursor t in
  for i = 0 to 9000 do
    ignore (Table.set_fields t (Pred.eq_str "name" "ann") [ ("age", v_int i) ])
  done;
  Alcotest.check delta "wrapped log" None (Table.changes_since t ~cursor:c3);
  Alcotest.check delta "fresh cursor after wrap" (Some [])
    (Table.changes_since t ~cursor:(Table.change_cursor t));
  (* clear invalidates every earlier cursor *)
  let c4 = Table.change_cursor t in
  Table.clear t;
  Alcotest.check delta "clear invalidates" None
    (Table.changes_since t ~cursor:c4)

let test_table_rows_are_copies () =
  let t, _ = fresh_table () in
  let _ = Table.insert t (row "ann" 30 true) in
  (match Table.select t Pred.True with
  | [ (_, r) ] -> r.(1) <- v_int 999
  | _ -> Alcotest.fail "select");
  match Table.select t Pred.True with
  | [ (_, r) ] -> Alcotest.(check int) "unchanged" 30 (Value.int r.(1))
  | _ -> Alcotest.fail "select"

let test_table_insertion_order () =
  let t, _ = fresh_table () in
  for i = 0 to 9 do
    ignore (Table.insert t (row (Printf.sprintf "p%d" i) i true))
  done;
  let names =
    List.map (fun (_, r) -> Value.str r.(0)) (Table.select t Pred.True)
  in
  Alcotest.(check (list string))
    "rowid order"
    (List.init 10 (fun i -> Printf.sprintf "p%d" i))
    names

let test_table_type_check_on_insert () =
  let t, _ = fresh_table () in
  Alcotest.check_raises "bad insert"
    (Invalid_argument "people.age: expected int, got bool") (fun () ->
      ignore (Table.insert t [| v_str "x"; v_bool true; v_bool true |]))

(* --- Db --- *)

let test_db () =
  let db = Db.create ~clock:(fun () -> 5) in
  let t = Db.add_table db sample_schema in
  Alcotest.(check bool) "lookup same" true (Db.table db "people" == t);
  Alcotest.(check (list string)) "names" [ "people" ] (Db.table_names db);
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Db.add_table: \"people\" already exists") (fun () ->
      ignore (Db.add_table db sample_schema));
  Alcotest.(check bool) "missing" true (Db.table_opt db "nope" = None)

(* --- Lock --- *)

let test_locks () =
  let l = Lock.create () in
  Alcotest.(check bool) "shared ok" true
    (Lock.acquire l ~key:"k" ~owner:"a" Lock.Shared);  (* lint: allow lock-protect -- lock-semantics unit test; every release is an explicit assertion *)
  Alcotest.(check bool) "second shared ok" true
    (Lock.acquire l ~key:"k" ~owner:"b" Lock.Shared);  (* lint: allow lock-protect -- lock-semantics unit test; every release is an explicit assertion *)
  Alcotest.(check bool) "exclusive conflicts" false
    (Lock.acquire l ~key:"k" ~owner:"c" Lock.Exclusive);  (* lint: allow lock-protect -- lock-semantics unit test; every release is an explicit assertion *)
  Lock.release l ~key:"k" ~owner:"a";
  Lock.release l ~key:"k" ~owner:"b";
  Alcotest.(check bool) "exclusive after release" true
    (Lock.acquire l ~key:"k" ~owner:"c" Lock.Exclusive);  (* lint: allow lock-protect -- lock-semantics unit test; every release is an explicit assertion *)
  Alcotest.(check bool) "shared blocked by exclusive" false
    (Lock.acquire l ~key:"k" ~owner:"d" Lock.Shared);  (* lint: allow lock-protect -- lock-semantics unit test; expected to fail against the held exclusive *)
  Lock.release_all l ~owner:"c";
  Alcotest.(check bool) "free after release_all" false (Lock.held l ~key:"k")

(* --- property tests --- *)

let prop_glob_star_matches_everything =
  QCheck.Test.make ~name:"glob: * matches any string" ~count:200
    QCheck.(string_of_size (Gen.int_range 0 50))
    (fun s -> Glob.matches ~pattern:"*" s)

let prop_glob_exact_self =
  QCheck.Test.make ~name:"glob: literal matches itself" ~count:200
    QCheck.(string_of_size (Gen.int_range 0 30))
    (fun s ->
      QCheck.assume
        (not (String.exists (fun c -> c = '*' || c = '?') s));
      Glob.matches ~pattern:s s)

let prop_table_count_matches_filter =
  QCheck.Test.make ~name:"table: count = length of select" ~count:100
    QCheck.(list (pair (int_range 0 100) bool))
    (fun rows ->
      let t, _ = fresh_table ~indexed:[] () in
      List.iteri
        (fun i (age, active) ->
          ignore (Table.insert t (row (Printf.sprintf "p%d" i) age active)))
        rows;
      let p = Pred.eq_bool "active" true in
      Table.count t p = List.length (Table.select t p)
      && Table.count t p = List.length (List.filter snd rows))

let suite =
  [
    Alcotest.test_case "value conversions" `Quick test_value_conversions;
    Alcotest.test_case "value projections" `Quick test_value_projections;
    Alcotest.test_case "glob basics" `Quick test_glob_basics;
    Alcotest.test_case "glob case fold" `Quick test_glob_case_fold;
    Alcotest.test_case "is_pattern" `Quick test_is_pattern;
    Alcotest.test_case "schema" `Quick test_schema;
    Alcotest.test_case "schema check_tuple" `Quick test_schema_check_tuple;
    Alcotest.test_case "pred eval" `Quick test_pred_eval;
    Alcotest.test_case "pred name_match" `Quick test_pred_name_match;
    Alcotest.test_case "pred indexable" `Quick test_pred_indexable;
    Alcotest.test_case "table insert/select" `Quick test_table_insert_select;
    Alcotest.test_case "table select_one" `Quick test_table_select_one;
    Alcotest.test_case "table update/delete" `Quick test_table_update_delete;
    Alcotest.test_case "index survives rename" `Quick
      test_table_index_consistency_after_rename;
    Alcotest.test_case "table stats" `Quick test_table_stats;
    Alcotest.test_case "table col_upper_bound" `Quick
      test_table_col_upper_bound;
    Alcotest.test_case "table changelog" `Quick test_table_changelog;
    Alcotest.test_case "rows are copies" `Quick test_table_rows_are_copies;
    Alcotest.test_case "insertion order" `Quick test_table_insertion_order;
    Alcotest.test_case "type check on insert" `Quick
      test_table_type_check_on_insert;
    Alcotest.test_case "db registry" `Quick test_db;
    Alcotest.test_case "locks" `Quick test_locks;
    QCheck_alcotest.to_alcotest prop_glob_star_matches_everything;
    QCheck_alcotest.to_alcotest prop_glob_exact_self;
    QCheck_alcotest.to_alcotest prop_table_count_matches_filter;
  ]
