(* Robustness fuzzing: the Moira server, the update service and the
   registration server must survive arbitrary bytes on their ports —
   the paper's "tamper-proof ... safe from malicious network attacks"
   requirement, checked the blunt way. *)

open Workload

let random_bytes rng n =
  String.init n (fun _ -> Char.chr (Sim.Rng.int rng 256))

(* also fuzz with structurally valid frames carrying junk fields *)
let junk_frame rng =
  Gdb.Wire.encode_request
    {
      Gdb.Wire.version =
        (if Sim.Rng.bool rng then Gdb.Wire.protocol_version
         else Sim.Rng.int rng 100);
      conn = Sim.Rng.int rng 1000;
      op = Sim.Rng.int rng 64;
      args =
        List.init (Sim.Rng.int rng 5) (fun _ ->
            random_bytes rng (Sim.Rng.int rng 40));
      ctx =
        (if Sim.Rng.bool rng then "" else random_bytes rng (Sim.Rng.int rng 30));
    }

let fuzz_service ~service () =
  let tb = Testbed.create () in
  let rng = Sim.Rng.create 1234 in
  let dsts =
    tb.Testbed.built.Population.moira_machine
    :: Array.to_list tb.Testbed.built.Population.hesiod_machines
  in
  let ws = tb.Testbed.built.Population.workstation_machines.(0) in
  for _ = 1 to 300 do
    let payload =
      if Sim.Rng.bool rng then random_bytes rng (Sim.Rng.int rng 200)
      else junk_frame rng
    in
    let dst = Sim.Rng.pick_list rng dsts in
    (* any result is fine; an exception is the failure *)
    match Netsim.Net.call tb.Testbed.net ~src:ws ~dst ~service payload with
    | Ok _ | Error _ -> ()
  done;
  (* the server is still alive and correct afterwards *)
  let c = Testbed.admin_client tb ~src:ws in
  match Moira.Mr_client.mr_query_list c ~name:"get_all_active_logins" [] with
  | Ok rows -> Alcotest.(check bool) "still serving" true (List.length rows > 0)
  | Error code -> Alcotest.fail (Comerr.Com_err.error_message code)

let fuzz_userreg () =
  let tb = Testbed.create () in
  let rng = Sim.Rng.create 99 in
  let ws = tb.Testbed.built.Population.workstation_machines.(0) in
  for _ = 1 to 200 do
    let payload = random_bytes rng (Sim.Rng.int rng 150) in
    match
      Netsim.Net.call tb.Testbed.net ~src:ws
        ~dst:tb.Testbed.built.Population.moira_machine ~service:"userreg"
        payload
    with
    | Ok _ | Error _ -> ()
  done;
  (* nobody got registered by garbage *)
  let stubs =
    Relation.Table.count
      (Moira.Mdb.table tb.Testbed.mdb "users")
      (Relation.Pred.eq_int "status" 0)
  in
  Alcotest.(check int) "stubs untouched"
    tb.Testbed.built.Population.spec.Population.unregistered stubs

let suite =
  [
    Alcotest.test_case "moira port survives garbage" `Quick
      (fuzz_service ~service:"moira");
    Alcotest.test_case "update port survives garbage" `Quick
      (fuzz_service ~service:"moira_update");
    Alcotest.test_case "hesiod port survives garbage" `Quick
      (fuzz_service ~service:"hesiod");
    Alcotest.test_case "userreg port survives garbage" `Quick fuzz_userreg;
  ]
