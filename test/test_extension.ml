(* The extensibility requirement of paper section 4: "as new services
   are added, the mechanism which supports those services must be easily
   added."  This test adds a brand-new managed service — FINGER, a
   campus directory file — using only the public APIs, and is the
   executable form of the walkthrough in HACKING.md. *)

open Workload
open Relation

(* 1. the generator: a new extract over existing relations *)
let finger_generator =
  Dcm.Gen.monolithic ~service:"FINGER"
    ~watches:[ Dcm.Gen.watch ~columns:[ "modtime"; "fmodtime" ] "users" ]
    (fun glue ->
      let mdb = Moira.Glue.mdb glue in
      let users = Moira.Mdb.table mdb "users" in
      let lines = ref [] in
      List.iter
        (fun (_, row) ->
          lines :=
            Printf.sprintf "%s:%s:%s"
              (Value.str (Table.field users row "login"))
              (Value.str (Table.field users row "fullname"))
              (Value.str (Table.field users row "office_phone"))
            :: !lines)
        (Table.select users (Pred.eq_int "status" 1));
      {
        Dcm.Gen.common =
          [
            ( "directory",
              Dcm.Sink.of_string
                (String.concat "\n" (List.sort compare !lines) ^ "\n") );
          ];
        per_host = [];
      })

let test_new_service_end_to_end () =
  let tb = Testbed.create () in
  let glue = tb.Testbed.glue in
  let target_machine = tb.Testbed.built.Population.mail_hub in

  (* 2. register the service and its host in the database, through the
     ordinary query handles *)
  let must name args =
    match Moira.Glue.query glue ~name args with
    | Ok _ -> ()
    | Error c -> Alcotest.fail (Comerr.Com_err.error_message c)
  in
  must "add_server_info"
    [ "FINGER"; "360"; "/etc/finger.out"; "finger.sh"; "UNIQUE"; "1";
      "LIST"; "moira-admins" ];
  must "add_server_host_info" [ "FINGER"; target_machine; "1"; "0"; "0"; "" ];

  (* 3. teach the target host how to install the file *)
  let host = Testbed.host tb target_machine in
  let up = Dcm.Update.serve host in
  Dcm.Update.register_script up ~name:"finger.sh"
    (Dcm.Update.install_files host ~dir:"/etc/athena" ());

  (* 4. run a DCM that knows the new generator *)
  let dcm =
    Dcm.Manager.create ~net:tb.Testbed.net
      ~moira_host:tb.Testbed.built.Population.moira_machine ~glue
      ~generators:(finger_generator :: Dcm.Manager.standard_generators)
      ()
  in
  Sim.Engine.advance tb.Testbed.engine (7 * 3600 * 1000);
  ignore (Dcm.Manager.run dcm);

  (* the directory file landed and contains every active user *)
  let fs = Netsim.Host.fs host in
  (match Netsim.Vfs.read fs ~path:"/etc/athena/directory" with
  | Some contents ->
      Array.iter
        (fun login ->
          Alcotest.(check bool) (login ^ " listed") true
            (List.exists
               (fun l ->
                 String.length l > String.length login
                 && String.sub l 0 (String.length login) = login)
               (String.split_on_char '\n' contents)))
        tb.Testbed.built.Population.logins
  | None -> Alcotest.fail "directory file not installed");

  (* incremental behaviour comes for free: nothing changed, so the next
     due pass is MR_NO_CHANGE *)
  Sim.Engine.advance tb.Testbed.engine (7 * 3600 * 1000);
  let report = Dcm.Manager.run dcm in
  (match
     (List.find
        (fun s -> s.Dcm.Manager.service = "FINGER")
        report.Dcm.Manager.services)
       .Dcm.Manager.gen
   with
  | Dcm.Manager.No_change -> ()
  | _ -> Alcotest.fail "no-change suppression missing for new service");
  (* ...and a finger change regenerates *)
  must "update_finger_by_login"
    [ tb.Testbed.built.Population.logins.(0); "New Name"; ""; ""; "";
      ""; "x3-1234"; ""; "" ];
  Sim.Engine.advance tb.Testbed.engine (7 * 3600 * 1000);
  let report = Dcm.Manager.run dcm in
  match
    (List.find
       (fun s -> s.Dcm.Manager.service = "FINGER")
       report.Dcm.Manager.services)
      .Dcm.Manager.gen
  with
  | Dcm.Manager.Generated _ -> ()
  | _ -> Alcotest.fail "finger change not picked up"

let suite =
  [
    Alcotest.test_case "new managed service end to end" `Quick
      test_new_service_end_to_end;
  ]
