(* The runtime lock-discipline sanitizer: each violation class caught in
   isolation, and the real DCM cycle certified clean under it. *)

open Relation

let fresh () =
  let obs = Obs.create () in
  let locks = Lock.create () in
  let san = Dcm.Sanitizer.install ~obs locks in
  (obs, locks, san)

let counter obs name = Option.value ~default:0 (Obs.find_counter obs name)

let test_double_acquire () =
  let obs, locks, san = fresh () in
  (* lint: allow lock-protect -- deliberately double-acquiring to trip the sanitizer *)
  ignore (Lock.acquire locks ~key:"service:TEST" ~owner:"dcm" Lock.Exclusive);
  (* lint: allow lock-protect -- deliberately double-acquiring to trip the sanitizer *)
  ignore (Lock.acquire locks ~key:"service:TEST" ~owner:"dcm" Lock.Exclusive);
  Alcotest.(check int)
    "double_acquire counted" 1
    (counter obs "sanitizer.double_acquire");
  Lock.release locks ~key:"service:TEST" ~owner:"dcm";
  Alcotest.(check int) "one violation" 1 (Dcm.Sanitizer.violations san)

let test_release_unheld () =
  let obs, locks, san = fresh () in
  Lock.release locks ~key:"service:TEST" ~owner:"nobody";
  Alcotest.(check int)
    "release_unheld counted" 1
    (counter obs "sanitizer.release_unheld");
  Alcotest.(check int) "one violation" 1 (Dcm.Sanitizer.violations san)

let test_release_all_not_flagged () =
  (* crash cleanup releases only owned keys: no false positive *)
  let obs, locks, _san = fresh () in
  (* lint: allow lock-protect -- exercising release_all as the cleanup path *)
  ignore (Lock.acquire locks ~key:"service:TEST" ~owner:"dcm" Lock.Exclusive);
  Lock.release_all locks ~owner:"dcm";
  Lock.release_all locks ~owner:"dcm";
  Alcotest.(check int)
    "no release_unheld" 0
    (counter obs "sanitizer.release_unheld")

let test_unlocked_write () =
  let obs, locks, san = fresh () in
  let fs = Netsim.Vfs.create () in
  Dcm.Sanitizer.guard_host san ~machine:"HES-1.MIT.EDU"
    ~dirs:[ "/etc/hesiod" ] fs;
  (* staging is exempt: the update protocol writes there before locking *)
  Netsim.Vfs.write fs ~path:"/tmp/incoming.tar" "x";
  Netsim.Vfs.write fs ~path:"/etc/hesiod/cluster.db.moira_update" "x";
  Alcotest.(check int)
    "staging writes exempt" 0
    (counter obs "sanitizer.unlocked_write");
  (* a durable write without the host lock is the violation *)
  Netsim.Vfs.write fs ~path:"/etc/hesiod/cluster.db" "x";
  Alcotest.(check int)
    "unlocked write counted" 1
    (counter obs "sanitizer.unlocked_write");
  (* the same write under the host lock is clean *)
  ignore
    (* lint: allow lock-protect -- minimal fixture; released three lines down *)
    (Lock.acquire locks ~key:"host:HESIOD/HES-1.MIT.EDU" ~owner:"dcm"
       Lock.Exclusive);
  Netsim.Vfs.write fs ~path:"/etc/hesiod/cluster.db" "y";
  Lock.release locks ~key:"host:HESIOD/HES-1.MIT.EDU" ~owner:"dcm";
  Alcotest.(check int)
    "locked write clean" 1
    (counter obs "sanitizer.unlocked_write");
  Alcotest.(check int) "one violation" 1 (Dcm.Sanitizer.violations san)

let test_quiescent () =
  let _obs, locks, san = fresh () in
  ignore
    (* lint: allow lock-protect -- the stranded lock is the point of the test *)
    (Lock.acquire locks ~key:"service:STUCK" ~owner:"dcm" Lock.Exclusive);
  Alcotest.(check (list string))
    "stranded lock reported" [ "service:STUCK" ]
    (Dcm.Sanitizer.check_quiescent san);
  Alcotest.(check int) "one violation" 1 (Dcm.Sanitizer.violations san);
  Lock.release locks ~key:"service:STUCK" ~owner:"dcm";
  Alcotest.(check int)
    "quiet once released" 1
    (Dcm.Sanitizer.violations san)

let test_dcm_cycle_clean () =
  (* the dogfood run: a full simulated day of DCM pushes under the
     sanitizer must produce zero violations and end quiescent *)
  let tb = Workload.Testbed.create ~sanitize:true () in
  let san = Option.get tb.Workload.Testbed.sanitizer in
  Workload.Testbed.run_hours tb 24;
  Alcotest.(check (list string))
    "quiescent at end" []
    (Dcm.Sanitizer.check_quiescent san);
  Alcotest.(check int) "no violations" 0 (Dcm.Sanitizer.violations san)

let suite =
  [
    Alcotest.test_case "double acquire" `Quick test_double_acquire;
    Alcotest.test_case "release unheld" `Quick test_release_unheld;
    Alcotest.test_case "release_all clean" `Quick test_release_all_not_flagged;
    Alcotest.test_case "unlocked write" `Quick test_unlocked_write;
    Alcotest.test_case "quiescence check" `Quick test_quiescent;
    Alcotest.test_case "dcm cycle clean under sanitizer" `Slow
      test_dcm_cycle_clean;
  ]
