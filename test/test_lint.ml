(* The linter's own tests: a known-bad fixture snippet per rule, the
   matching clean variant, and the suppression machinery.  Fixtures are
   linted in memory under a lib/ path so every rule (including
   schema-ref, which is scoped to lib/ and bin/) applies. *)

let lib_file = "lib/moira/q_fixture.ml"

(* Build an allow comment without this test file ever containing the
   literal marker (the scanner is line-based and would otherwise read
   the fixture text inside this very file). *)
let allow rule reason = "(*" ^ " lint: allow " ^ rule ^ " -- " ^ reason ^ " *)"

let rules_of ?(file = lib_file) src =
  List.map (fun v -> v.Lint.v_rule) (Lint.lint_source ~file src)

let check_rules what expected src =
  Alcotest.(check (list string)) what expected (rules_of src)

let test_wall_clock () =
  check_rules "gettimeofday flagged" [ "wall-clock" ]
    "let t = Unix.gettimeofday ()";
  check_rules "Sys.time flagged" [ "wall-clock" ] "let t = Sys.time ()";
  check_rules "Unix.time flagged" [ "wall-clock" ] "let t = Unix.time ()";
  check_rules "engine clock clean" [] "let t = Sim.Engine.clock engine";
  (* the built-in per-file allowlist: bench timing is legitimate *)
  Alcotest.(check (list string))
    "bench/main.ml allowlisted" []
    (rules_of ~file:"bench/main.ml" "let t = Unix.gettimeofday ()")

let test_global_random () =
  check_rules "self_init flagged" [ "global-random" ]
    "let () = Random.self_init ()";
  check_rules "Random.int flagged" [ "global-random" ]
    "let n = Random.int 5";
  check_rules "Sim.Rng clean" [] "let n = Sim.Rng.int rng 5"

let test_obj_magic () =
  check_rules "Obj.magic flagged" [ "obj-magic" ] "let y = Obj.magic x";
  check_rules "Obj.repr not flagged" [] "let y = Obj.repr x"

let test_swallow_exn () =
  check_rules "wildcard handler flagged" [ "swallow-exn" ]
    "let v = try f () with _ -> 0";
  check_rules "named wildcard flagged" [ "swallow-exn" ]
    "let v = try f () with _e -> 0";
  check_rules "typed handler clean" []
    "let v = try f () with Not_found -> 0";
  check_rules "bound exception clean" []
    "let v = try f () with e -> log e; 0"

let test_unsorted_fold () =
  check_rules "fold into concat flagged" [ "unsorted-fold" ]
    "let s = String.concat \",\" (Hashtbl.fold (fun k _ a -> k :: a) h [])";
  check_rules "sorted fold clean" []
    "let s =\n\
    \  String.concat \",\"\n\
    \    (List.sort compare (Hashtbl.fold (fun k _ a -> k :: a) h []))";
  check_rules "iter into printf flagged" [ "unsorted-fold" ]
    "let () = Printf.printf \"%s\" (Hashtbl.fold (fun k _ a -> a ^ k) h \"\")";
  check_rules "fold not reaching output clean" []
    "let n = Hashtbl.fold (fun _ v a -> a + v) h 0"

let test_lock_protect () =
  check_rules "bare acquire flagged" [ "lock-protect" ]
    "let f l = ignore (Lock.acquire l ~key:\"k\" ~owner:\"o\" Lock.Exclusive)";
  check_rules "protected acquire clean" []
    "let f l =\n\
    \  if Lock.acquire l ~key:\"k\" ~owner:\"o\" Lock.Exclusive then\n\
    \    Fun.protect\n\
    \      ~finally:(fun () -> Lock.release l ~key:\"k\" ~owner:\"o\")\n\
    \      run"

let test_schema_ref () =
  check_rules "unknown column flagged" [ "schema-ref" ]
    "let p = Pred.eq_str \"nosuch_column\" \"v\"";
  check_rules "known column clean" [] "let p = Pred.eq_str \"login\" \"v\"";
  check_rules "computed column skipped" []
    "let p = Pred.eq_str (prefix ^ \"_type\") \"LIST\"";
  check_rules "unknown table flagged" [ "schema-ref" ]
    "let t = Mdb.table mdb \"nosuch_table\"";
  check_rules "known table clean" [] "let t = Mdb.table mdb \"users\"";
  check_rules "watch column flagged" [ "schema-ref" ]
    "let w = Gen.watch ~columns:[ \"nosuch\" ] \"users\"";
  (* tests may build ad-hoc relations: the rule is scoped out there *)
  Alcotest.(check (list string))
    "schema-ref off under test/" []
    (rules_of ~file:"test/test_fixture.ml" "let p = Pred.eq_str \"k\" \"v\"")

let test_suppression () =
  Alcotest.(check (list string))
    "eol annotation suppresses" []
    (rules_of
       ("let t = Unix.gettimeofday ()  "
       ^ allow "wall-clock" "fixture needs real time"));
  Alcotest.(check (list string))
    "solo line above suppresses" []
    (rules_of
       (allow "wall-clock" "fixture needs real time"
       ^ "\nlet t = Unix.gettimeofday ()"));
  Alcotest.(check (list string))
    "annotation for another rule does not suppress"
    [ "unused-allow"; "wall-clock" ]
    (rules_of
       ("let t = Unix.gettimeofday ()  " ^ allow "obj-magic" "wrong rule"))

let test_allow_hygiene () =
  Alcotest.(check (list string))
    "stale annotation reported" [ "unused-allow" ]
    (rules_of (allow "wall-clock" "nothing here anymore" ^ "\nlet x = 1"));
  Alcotest.(check (list string))
    "missing reason rejected" [ "bad-allow"; "wall-clock" ]
    (rules_of
       ("let t = Unix.gettimeofday ()  " ^ "(*" ^ " lint: allow wall-clock *)"));
  Alcotest.(check (list string))
    "unknown rule rejected" [ "bad-allow"; "wall-clock" ]
    (rules_of
       ("let t = Unix.gettimeofday ()  " ^ allow "no-such-rule" "why"))

let test_repo_is_clean () =
  (* the acceptance criterion, run from the repo root by dune *)
  let files = List.concat_map Lint.files_under [ "../lib"; "../bin" ] in
  Alcotest.(check bool) "some files found" true (List.length files > 50);
  let violations = List.concat_map Lint.lint_file files in
  Alcotest.(check (list string))
    "lib/ and bin/ lint clean" []
    (List.map Lint.pp_violation violations)

let suite =
  [
    Alcotest.test_case "wall-clock" `Quick test_wall_clock;
    Alcotest.test_case "global-random" `Quick test_global_random;
    Alcotest.test_case "obj-magic" `Quick test_obj_magic;
    Alcotest.test_case "swallow-exn" `Quick test_swallow_exn;
    Alcotest.test_case "unsorted-fold" `Quick test_unsorted_fold;
    Alcotest.test_case "lock-protect" `Quick test_lock_protect;
    Alcotest.test_case "schema-ref" `Quick test_schema_ref;
    Alcotest.test_case "suppression" `Quick test_suppression;
    Alcotest.test_case "allow hygiene" `Quick test_allow_hygiene;
    Alcotest.test_case "repo lib+bin clean" `Quick test_repo_is_clean;
  ]
