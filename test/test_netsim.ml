(* The simulated network: filesystems with crash semantics, hosts,
   links, fault injection. *)

let fresh_net () =
  let e = Sim.Engine.create () in
  (e, Netsim.Net.create e)

(* --- Vfs --- *)

let test_vfs_write_read () =
  let fs = Netsim.Vfs.create () in
  Netsim.Vfs.write fs ~path:"/a" "one";
  Alcotest.(check (option string)) "read back" (Some "one")
    (Netsim.Vfs.read fs ~path:"/a");
  Alcotest.(check (option string)) "missing" None
    (Netsim.Vfs.read fs ~path:"/b");
  Alcotest.(check int) "size" 3 (Netsim.Vfs.size fs ~path:"/a")

let test_vfs_crash_loses_unflushed () =
  let fs = Netsim.Vfs.create () in
  Netsim.Vfs.write fs ~path:"/stable" "kept";
  Netsim.Vfs.flush fs;
  Netsim.Vfs.write fs ~path:"/volatile" "lost";
  Netsim.Vfs.crash fs;
  Alcotest.(check (option string)) "flushed survives" (Some "kept")
    (Netsim.Vfs.read fs ~path:"/stable");
  Alcotest.(check (option string)) "unflushed gone" None
    (Netsim.Vfs.read fs ~path:"/volatile")

let test_vfs_remove_semantics () =
  let fs = Netsim.Vfs.create () in
  Netsim.Vfs.write fs ~path:"/a" "x";
  Netsim.Vfs.flush fs;
  Netsim.Vfs.remove fs ~path:"/a";
  Alcotest.(check bool) "removed visible" false (Netsim.Vfs.exists fs ~path:"/a");
  Netsim.Vfs.crash fs;
  Alcotest.(check bool) "unflushed removal undone by crash" true
    (Netsim.Vfs.exists fs ~path:"/a");
  Netsim.Vfs.remove fs ~path:"/a";
  Netsim.Vfs.flush fs;
  Netsim.Vfs.crash fs;
  Alcotest.(check bool) "flushed removal sticks" false
    (Netsim.Vfs.exists fs ~path:"/a")

let test_vfs_rename_atomic_and_durable () =
  let fs = Netsim.Vfs.create () in
  Netsim.Vfs.write fs ~path:"/f.new" "v2";
  Netsim.Vfs.write fs ~path:"/f" "v1";
  Netsim.Vfs.flush fs;
  Alcotest.(check bool) "rename ok" true
    (Netsim.Vfs.rename fs ~src:"/f.new" ~dst:"/f");
  Alcotest.(check (option string)) "new contents" (Some "v2")
    (Netsim.Vfs.read fs ~path:"/f");
  Alcotest.(check bool) "src gone" false (Netsim.Vfs.exists fs ~path:"/f.new");
  Netsim.Vfs.crash fs;
  Alcotest.(check (option string)) "rename survives crash" (Some "v2")
    (Netsim.Vfs.read fs ~path:"/f")

let test_vfs_rename_missing_src () =
  let fs = Netsim.Vfs.create () in
  Alcotest.(check bool) "missing src" false
    (Netsim.Vfs.rename fs ~src:"/ghost" ~dst:"/f")

let test_vfs_list () =
  let fs = Netsim.Vfs.create () in
  Netsim.Vfs.write fs ~path:"/b" "1";
  Netsim.Vfs.write fs ~path:"/a" "2";
  Netsim.Vfs.flush fs;
  Netsim.Vfs.write fs ~path:"/c" "3";
  Alcotest.(check (list string)) "sorted union" [ "/a"; "/b"; "/c" ]
    (Netsim.Vfs.list fs)

(* --- Host --- *)

let test_host_services () =
  let h = Netsim.Host.create "H" in
  Netsim.Host.register h ~service:"echo" (fun ~src:_ p -> "echo:" ^ p);
  (match Netsim.Host.lookup h ~service:"echo" with
  | Some f -> Alcotest.(check string) "handler" "echo:x" (f ~src:"me" "x")
  | None -> Alcotest.fail "lookup");
  Netsim.Host.unregister h ~service:"echo";
  Alcotest.(check bool) "unregistered" true
    (Netsim.Host.lookup h ~service:"echo" = None)

let test_host_crash_boot () =
  let h = Netsim.Host.create "H" in
  let booted = ref 0 in
  Netsim.Host.on_boot h (fun _ -> incr booted);
  Netsim.Vfs.write (Netsim.Host.fs h) ~path:"/x" "unflushed";
  Netsim.Host.crash h;
  Alcotest.(check bool) "down" false (Netsim.Host.is_up h);
  Alcotest.(check bool) "unflushed lost" false
    (Netsim.Vfs.exists (Netsim.Host.fs h) ~path:"/x");
  Netsim.Host.boot h;
  Alcotest.(check bool) "up" true (Netsim.Host.is_up h);
  Alcotest.(check int) "boot hook ran" 1 !booted

let test_host_crash_points () =
  let h = Netsim.Host.create "H" in
  Netsim.Host.maybe_crash h ~point:"p"; (* unarmed: no-op *)
  Netsim.Host.arm_crash h ~point:"p";
  (try
     Netsim.Host.maybe_crash h ~point:"p";
     Alcotest.fail "should crash"
   with Netsim.Host.Crashed "p" -> ());
  Alcotest.(check bool) "down after crash" false (Netsim.Host.is_up h);
  Netsim.Host.boot h;
  (* one-shot: does not fire again *)
  Netsim.Host.maybe_crash h ~point:"p";
  Alcotest.(check bool) "still up" true (Netsim.Host.is_up h)

(* --- Net --- *)

let test_net_call_roundtrip () =
  let _, net = fresh_net () in
  let h = Netsim.Net.add_host net "SRV" in
  ignore (Netsim.Net.add_host net "CLI");
  Netsim.Host.register h ~service:"double" (fun ~src p -> src ^ "/" ^ p ^ p);
  match Netsim.Net.call net ~src:"CLI" ~dst:"SRV" ~service:"double" "ab" with
  | Ok r -> Alcotest.(check string) "reply" "CLI/abab" r
  | Error f -> Alcotest.fail (Netsim.Net.failure_to_string f)

let test_net_failures () =
  let _, net = fresh_net () in
  let h = Netsim.Net.add_host net "SRV" in
  ignore (Netsim.Net.add_host net "CLI");
  let call dst service =
    Netsim.Net.call net ~src:"CLI" ~dst ~service "x"
  in
  Alcotest.(check bool) "no host" true (call "GHOST" "s" = Error Netsim.Net.No_host);
  Alcotest.(check bool) "no service" true
    (call "SRV" "nothing" = Error Netsim.Net.No_service);
  Netsim.Host.crash h;
  Alcotest.(check bool) "host down" true
    (call "SRV" "s" = Error Netsim.Net.Host_down)

let test_net_latency_charged () =
  let e, net = fresh_net () in
  let h = Netsim.Net.add_host net "SRV" in
  ignore (Netsim.Net.add_host net "CLI");
  Netsim.Host.register h ~service:"s" (fun ~src:_ _ -> "ok");
  let before = Sim.Engine.now e in
  ignore (Netsim.Net.call net ~src:"CLI" ~dst:"SRV" ~service:"s" "x");
  Alcotest.(check bool) "clock advanced" true (Sim.Engine.now e > before)

let test_net_timeout_cost () =
  let e, net = fresh_net () in
  let h = Netsim.Net.add_host net "SRV" in
  ignore (Netsim.Net.add_host net "CLI");
  Netsim.Host.crash h;
  let before = Sim.Engine.now e in
  ignore (Netsim.Net.call net ~src:"CLI" ~dst:"SRV" ~service:"s" "x");
  Alcotest.(check bool) "timeout charged (30s default)" true
    (Sim.Engine.now e - before >= 30_000)

let test_net_drop_rate () =
  let _, net = fresh_net () in
  let h = Netsim.Net.add_host net "SRV" in
  ignore (Netsim.Net.add_host net "CLI");
  Netsim.Host.register h ~service:"s" (fun ~src:_ _ -> "ok");
  Netsim.Net.set_drop_rate net 1.0;
  (match Netsim.Net.call net ~src:"CLI" ~dst:"SRV" ~service:"s" "x" with
  | Error Netsim.Net.Timeout -> ()
  | _ -> Alcotest.fail "expected timeout under 100% drop");
  Netsim.Net.set_drop_rate net 0.0;
  match Netsim.Net.call net ~src:"CLI" ~dst:"SRV" ~service:"s" "x" with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "expected success with 0% drop"

let test_net_remote_crash () =
  let _, net = fresh_net () in
  let h = Netsim.Net.add_host net "SRV" in
  ignore (Netsim.Net.add_host net "CLI");
  Netsim.Host.register h ~service:"s" (fun ~src:_ _ ->
      Netsim.Host.maybe_crash h ~point:"boom";
      "ok");
  Netsim.Host.arm_crash h ~point:"boom";
  (match Netsim.Net.call net ~src:"CLI" ~dst:"SRV" ~service:"s" "x" with
  | Error (Netsim.Net.Remote_crash "boom") -> ()
  | _ -> Alcotest.fail "expected remote crash");
  Alcotest.(check bool) "host went down" false (Netsim.Host.is_up h)

let test_net_stats () =
  let _, net = fresh_net () in
  let h = Netsim.Net.add_host net "SRV" in
  ignore (Netsim.Net.add_host net "CLI");
  Netsim.Host.register h ~service:"s" (fun ~src:_ _ -> "yo");
  ignore (Netsim.Net.call net ~src:"CLI" ~dst:"SRV" ~service:"s" "abc");
  ignore (Netsim.Net.call net ~src:"CLI" ~dst:"GHOST" ~service:"s" "x");
  let s = Netsim.Net.stats net in
  Alcotest.(check int) "calls" 2 s.Netsim.Net.calls;
  Alcotest.(check int) "failures" 1 s.Netsim.Net.failures;
  Alcotest.(check int) "bytes both ways" (3 + 2 + 1) s.Netsim.Net.bytes;
  Netsim.Net.reset_stats net;
  Alcotest.(check int) "reset" 0 (Netsim.Net.stats net).Netsim.Net.calls

let test_net_latency_proportional_to_size () =
  let e, net = fresh_net () in
  let h = Netsim.Net.add_host net "SRV" in
  ignore (Netsim.Net.add_host net "CLI");
  Netsim.Host.register h ~service:"s" (fun ~src:_ _ -> "ok");
  let cost payload =
    let before = Sim.Engine.now e in
    ignore (Netsim.Net.call net ~src:"CLI" ~dst:"SRV" ~service:"s" payload);
    Sim.Engine.now e - before
  in
  let small = cost (String.make 100 'x') in
  let large = cost (String.make 200_000 'x') in
  Alcotest.(check bool) "bigger transfers cost more" true (large > small);
  (* default model: 1 ms per KiB on top of the base RTT *)
  Alcotest.(check bool) "roughly per-KiB" true
    (large - small >= 190 && large - small <= 210)

let test_net_reply_loss_executes_handler () =
  let _, net = fresh_net () in
  let h = Netsim.Net.add_host net "SRV" in
  ignore (Netsim.Net.add_host net "CLI");
  let executed = ref 0 in
  Netsim.Host.register h ~service:"s" (fun ~src:_ _ ->
      incr executed;
      "ok");
  Netsim.Net.set_reply_drop_rate net 1.0;
  (match Netsim.Net.call net ~src:"CLI" ~dst:"SRV" ~service:"s" "x" with
  | Error Netsim.Net.Timeout -> ()
  | _ -> Alcotest.fail "expected timeout under 100% reply loss");
  (* the defining property of reply loss: the request WAS processed *)
  Alcotest.(check int) "handler ran despite caller timeout" 1 !executed;
  Alcotest.(check int) "counted as reply_dropped" 1
    (Netsim.Net.stats net).Netsim.Net.reply_dropped;
  Alcotest.(check int) "not counted as req_dropped" 0
    (Netsim.Net.stats net).Netsim.Net.req_dropped;
  Netsim.Net.set_reply_drop_rate net 0.0;
  match Netsim.Net.call net ~src:"CLI" ~dst:"SRV" ~service:"s" "x" with
  | Ok _ -> Alcotest.(check int) "second call also ran" 2 !executed
  | Error _ -> Alcotest.fail "expected success with reply loss off"

let test_net_arm_reply_drop () =
  let _, net = fresh_net () in
  let h = Netsim.Net.add_host net "SRV" in
  ignore (Netsim.Net.add_host net "CLI");
  let executed = ref 0 in
  Netsim.Host.register h ~service:"s" (fun ~src:_ _ ->
      incr executed;
      "ok");
  Netsim.Net.arm_reply_drop net ~dst:"SRV" ~skip:1 1;
  let call () = Netsim.Net.call net ~src:"CLI" ~dst:"SRV" ~service:"s" "x" in
  Alcotest.(check bool) "skipped call succeeds" true (call () = Ok "ok");
  Alcotest.(check bool) "armed drop fires" true
    (call () = Error Netsim.Net.Timeout);
  Alcotest.(check bool) "then disarmed" true (call () = Ok "ok");
  Alcotest.(check int) "every call executed server-side" 3 !executed

let test_net_link_faults () =
  let _, net = fresh_net () in
  let h = Netsim.Net.add_host net "SRV" in
  ignore (Netsim.Net.add_host net "CLI");
  ignore (Netsim.Net.add_host net "OTHER");
  Netsim.Host.register h ~service:"s" (fun ~src:_ _ -> "ok");
  Netsim.Net.set_link_faults net ~a:"CLI" ~b:"SRV" ~drop:1.0 ();
  (match Netsim.Net.call net ~src:"CLI" ~dst:"SRV" ~service:"s" "x" with
  | Error Netsim.Net.Timeout -> ()
  | _ -> Alcotest.fail "faulty link should drop");
  (* the same destination over a clean link is unaffected *)
  (match Netsim.Net.call net ~src:"OTHER" ~dst:"SRV" ~service:"s" "x" with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "clean link should work");
  Netsim.Net.clear_link_faults net;
  match Netsim.Net.call net ~src:"CLI" ~dst:"SRV" ~service:"s" "x" with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "cleared link should work"

let test_net_link_latency () =
  let e, net = fresh_net () in
  let h = Netsim.Net.add_host net "SRV" in
  ignore (Netsim.Net.add_host net "CLI");
  Netsim.Host.register h ~service:"s" (fun ~src:_ _ -> "ok");
  let cost () =
    let before = Sim.Engine.now e in
    ignore (Netsim.Net.call net ~src:"CLI" ~dst:"SRV" ~service:"s" "x");
    Sim.Engine.now e - before
  in
  let clean = cost () in
  Netsim.Net.set_link_faults net ~a:"CLI" ~b:"SRV" ~latency_ms:250 ();
  let slow = cost () in
  (* 250 ms extra each way *)
  Alcotest.(check int) "extra latency charged both directions" 500
    (slow - clean)

let test_net_partition () =
  let _, net = fresh_net () in
  List.iter
    (fun n ->
      let h = Netsim.Net.add_host net n in
      Netsim.Host.register h ~service:"s" (fun ~src:_ _ -> "ok"))
    [ "A"; "B"; "C"; "D" ];
  Netsim.Net.set_partition net [ [ "A"; "B" ] ];
  let call src dst = Netsim.Net.call net ~src ~dst ~service:"s" "x" in
  Alcotest.(check bool) "same group talks" true (call "A" "B" = Ok "ok");
  Alcotest.(check bool) "cut from unlisted" true
    (call "A" "C" = Error Netsim.Net.Timeout);
  Alcotest.(check bool) "unlisted cut from group" true
    (call "C" "A" = Error Netsim.Net.Timeout);
  Alcotest.(check bool) "unlisted hosts talk" true (call "C" "D" = Ok "ok");
  Alcotest.(check bool) "partitioned calls counted" true
    ((Netsim.Net.stats net).Netsim.Net.partitioned = 2);
  Netsim.Net.clear_partition net;
  Alcotest.(check bool) "healed" true (call "A" "C" = Ok "ok")

let test_net_partition_window () =
  let e, net = fresh_net () in
  List.iter
    (fun n ->
      let h = Netsim.Net.add_host net n in
      Netsim.Host.register h ~service:"s" (fun ~src:_ _ -> "ok"))
    [ "A"; "B" ];
  Netsim.Net.partition_window net ~hosts:[ "B" ] ~at:1000 ~duration_ms:1000;
  let call () = Netsim.Net.call net ~src:"A" ~dst:"B" ~service:"s" "x" in
  Alcotest.(check bool) "before window" true (call () = Ok "ok");
  Sim.Engine.run_until e 1500;
  Alcotest.(check bool) "inside window" true
    (call () = Error Netsim.Net.Timeout);
  Sim.Engine.run_until e 60_000;
  Alcotest.(check bool) "after window" true (call () = Ok "ok")

let test_net_schedule_outage () =
  let e, net = fresh_net () in
  let h = Netsim.Net.add_host net "SRV" in
  ignore (Netsim.Net.add_host net "CLI");
  (* services re-registered from a boot hook, like Update.serve does *)
  let install () =
    Netsim.Host.register h ~service:"s" (fun ~src:_ _ -> "ok")
  in
  install ();
  Netsim.Host.on_boot h (fun _ -> install ());
  Netsim.Net.schedule_outage net ~host:"SRV" ~at:1000 ~duration_ms:2000;
  let call () = Netsim.Net.call net ~src:"CLI" ~dst:"SRV" ~service:"s" "x" in
  Alcotest.(check bool) "up before outage" true (call () = Ok "ok");
  Sim.Engine.run_until e 1500;
  Alcotest.(check bool) "down during outage" true
    (call () = Error Netsim.Net.Host_down);
  Alcotest.(check bool) "host marked down" false (Netsim.Host.is_up h);
  Sim.Engine.run_until e 120_000;
  Alcotest.(check bool) "rebooted after outage" true (call () = Ok "ok")

let test_net_stats_by_kind () =
  let _, net = fresh_net () in
  let h = Netsim.Net.add_host net "SRV" in
  ignore (Netsim.Net.add_host net "CLI");
  Netsim.Host.register h ~service:"s" (fun ~src:_ _ -> "ok");
  Netsim.Net.set_drop_rate net 1.0;
  ignore (Netsim.Net.call net ~src:"CLI" ~dst:"SRV" ~service:"s" "x");
  Netsim.Net.set_drop_rate net 0.0;
  Netsim.Host.crash h;
  ignore (Netsim.Net.call net ~src:"CLI" ~dst:"SRV" ~service:"s" "x");
  Netsim.Host.boot h;
  let s = Netsim.Net.stats net in
  Alcotest.(check int) "req_dropped" 1 s.Netsim.Net.req_dropped;
  Alcotest.(check int) "down" 1 s.Netsim.Net.down;
  Alcotest.(check int) "failures total" 2 s.Netsim.Net.failures;
  Alcotest.(check bool) "wasted bytes counted" true
    (s.Netsim.Net.wasted_bytes >= 2)

let test_engine_pending () =
  let e = Sim.Engine.create () in
  let id = Sim.Engine.after e ~delay:10 "a" (fun () -> ()) in
  ignore (Sim.Engine.after e ~delay:20 "b" (fun () -> ()));
  Alcotest.(check int) "two pending" 2 (Sim.Engine.pending e);
  Sim.Engine.cancel e id;
  Alcotest.(check int) "cancel drops one" 1 (Sim.Engine.pending e);
  Sim.Engine.run_until e 100;
  Alcotest.(check int) "drained" 0 (Sim.Engine.pending e)

let test_net_duplicate_host () =
  let _, net = fresh_net () in
  ignore (Netsim.Net.add_host net "A");
  Alcotest.check_raises "dup"
    (Invalid_argument "Net.add_host: duplicate host \"A\"") (fun () ->
      ignore (Netsim.Net.add_host net "A"))

let suite =
  [
    Alcotest.test_case "vfs write/read" `Quick test_vfs_write_read;
    Alcotest.test_case "vfs crash loses unflushed" `Quick
      test_vfs_crash_loses_unflushed;
    Alcotest.test_case "vfs remove semantics" `Quick test_vfs_remove_semantics;
    Alcotest.test_case "vfs rename atomic+durable" `Quick
      test_vfs_rename_atomic_and_durable;
    Alcotest.test_case "vfs rename missing src" `Quick
      test_vfs_rename_missing_src;
    Alcotest.test_case "vfs list" `Quick test_vfs_list;
    Alcotest.test_case "host services" `Quick test_host_services;
    Alcotest.test_case "host crash/boot" `Quick test_host_crash_boot;
    Alcotest.test_case "host crash points" `Quick test_host_crash_points;
    Alcotest.test_case "net call roundtrip" `Quick test_net_call_roundtrip;
    Alcotest.test_case "net failures" `Quick test_net_failures;
    Alcotest.test_case "net latency charged" `Quick test_net_latency_charged;
    Alcotest.test_case "net timeout cost" `Quick test_net_timeout_cost;
    Alcotest.test_case "net drop rate" `Quick test_net_drop_rate;
    Alcotest.test_case "net remote crash" `Quick test_net_remote_crash;
    Alcotest.test_case "net stats" `Quick test_net_stats;
    Alcotest.test_case "net duplicate host" `Quick test_net_duplicate_host;
    Alcotest.test_case "latency proportional" `Quick
      test_net_latency_proportional_to_size;
    Alcotest.test_case "net reply loss executes handler" `Quick
      test_net_reply_loss_executes_handler;
    Alcotest.test_case "net armed reply drop" `Quick test_net_arm_reply_drop;
    Alcotest.test_case "net link faults" `Quick test_net_link_faults;
    Alcotest.test_case "net link latency" `Quick test_net_link_latency;
    Alcotest.test_case "net partition" `Quick test_net_partition;
    Alcotest.test_case "net partition window" `Quick
      test_net_partition_window;
    Alcotest.test_case "net scheduled outage" `Quick
      test_net_schedule_outage;
    Alcotest.test_case "net stats by kind" `Quick test_net_stats_by_kind;
    Alcotest.test_case "engine pending" `Quick test_engine_pending;
  ]
