(* The Moira-to-server update protocol (section 5.9): checksummed
   transfer, staged install, atomic swap, crash windows, recovery. *)

let setup () =
  let engine = Sim.Engine.create () in
  let net = Netsim.Net.create engine in
  let srv = Netsim.Net.add_host net "SRV" in
  ignore (Netsim.Net.add_host net "MOIRA");
  let up = Dcm.Update.serve srv in
  Dcm.Update.register_script up ~name:"install.sh"
    (Dcm.Update.install_files srv ~dir:"/etc/data" ());
  (engine, net, srv, up)

(* Update.push now takes streaming docs; tests keep authoring plain
   strings and wrap at the call boundary. *)
let docs = List.map (fun (n, c) -> (n, Dcm.Sink.of_string c))

let push ?(files = [ ("a.db", "alpha\n"); ("b.db", "beta\n") ]) net =
  Dcm.Update.push net ~src:"MOIRA" ~dst:"SRV" ~target:"/tmp/out"
    ~files:(docs files) ~script:"install.sh" ()

let test_successful_update () =
  let _, net, srv, _ = setup () in
  (match push net with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "update failed");
  let fs = Netsim.Host.fs srv in
  Alcotest.(check (option string)) "a installed" (Some "alpha\n")
    (Netsim.Vfs.read fs ~path:"/etc/data/a.db");
  Alcotest.(check (option string)) "b installed" (Some "beta\n")
    (Netsim.Vfs.read fs ~path:"/etc/data/b.db");
  (* staged archive removed after install *)
  Alcotest.(check bool) "staged cleaned" false
    (Netsim.Vfs.exists fs ~path:"/tmp/out.moira_update")

let test_install_survives_crash_after_install () =
  let _, net, srv, _ = setup () in
  ignore (push net);
  Netsim.Host.crash srv;
  let fs = Netsim.Host.fs srv in
  Alcotest.(check (option string)) "files survive reboot" (Some "alpha\n")
    (Netsim.Vfs.read fs ~path:"/etc/data/a.db")

let test_bad_auth_token () =
  let _, net, _, _ = setup () in
  match
    Dcm.Update.push net ~src:"MOIRA" ~dst:"SRV" ~token:"stolen"
      ~target:"/tmp/out" ~files:(docs [ ("a", "x") ]) ~script:"install.sh" ()
  with
  | Error (Dcm.Update.Hard (code, _)) when code = Moira.Mr_err.perm -> ()
  | _ -> Alcotest.fail "bad token accepted"

let test_unknown_script_is_hard_error () =
  let _, net, _, _ = setup () in
  match
    Dcm.Update.push net ~src:"MOIRA" ~dst:"SRV" ~target:"/tmp/out"
      ~files:(docs [ ("a", "x") ]) ~script:"nosuch.sh" ()
  with
  | Error (Dcm.Update.Hard (code, _))
    when code = Moira.Mr_err.update_script -> ()
  | _ -> Alcotest.fail "unknown script not a hard error"

let test_host_down_is_soft () =
  let _, net, srv, _ = setup () in
  Netsim.Host.crash srv;
  match push net with
  | Error (Dcm.Update.Soft (code, _))
    when code = Moira.Mr_err.host_unreachable -> ()
  | _ -> Alcotest.fail "down host not a soft failure"

let test_crash_during_transfer () =
  let _, net, srv, _ = setup () in
  Netsim.Host.arm_crash srv ~point:"xfer";
  (match push net with
  | Error (Dcm.Update.Soft _) -> ()
  | _ -> Alcotest.fail "crash mid-transfer not soft");
  (* the staged write was never flushed: lost with the crash *)
  Netsim.Host.boot srv;
  let fs = Netsim.Host.fs srv in
  Alcotest.(check bool) "no staged file" false
    (Netsim.Vfs.exists fs ~path:"/tmp/out.moira_update");
  Alcotest.(check bool) "no data installed" false
    (Netsim.Vfs.exists fs ~path:"/etc/data/a.db");
  (* the retry succeeds *)
  match push net with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "retry failed"

let test_crash_before_exec () =
  (* Transfer completed and was flushed; the crash hits before the
     install command.  After reboot the staged file is present but not
     installed; the next update overwrites it and installs. *)
  let _, net, srv, _ = setup () in
  Netsim.Host.arm_crash srv ~point:"before_exec";
  (match push net with
  | Error (Dcm.Update.Soft _) -> ()
  | _ -> Alcotest.fail "crash before exec not soft");
  Netsim.Host.boot srv;
  let fs = Netsim.Host.fs srv in
  Alcotest.(check bool) "staged file survived (was flushed)" true
    (Netsim.Vfs.exists fs ~path:"/tmp/out.moira_update");
  Alcotest.(check bool) "not installed" false
    (Netsim.Vfs.exists fs ~path:"/etc/data/a.db");
  (match push net with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "retry failed");
  Alcotest.(check (option string)) "installed after retry" (Some "alpha\n")
    (Netsim.Vfs.read fs ~path:"/etc/data/a.db")

let test_crash_mid_install_leaves_consistent_files () =
  (* The swap is per-file atomic: a crash between member installs leaves
     each file either fully old or fully new, never mixed. *)
  let _, net, srv, _ = setup () in
  (* install v1 of both files *)
  ignore (push ~files:[ ("a.db", "a-v1"); ("b.db", "b-v1") ] net);
  Netsim.Host.arm_crash srv ~point:"mid_install";
  (match push ~files:[ ("a.db", "a-v2"); ("b.db", "b-v2") ] net with
  | Error (Dcm.Update.Soft _) -> ()
  | _ -> Alcotest.fail "mid-install crash not soft");
  Netsim.Host.boot srv;
  let fs = Netsim.Host.fs srv in
  let a = Netsim.Vfs.read fs ~path:"/etc/data/a.db" in
  let b = Netsim.Vfs.read fs ~path:"/etc/data/b.db" in
  Alcotest.(check bool) "a is v1 or v2, complete" true
    (a = Some "a-v1" || a = Some "a-v2");
  Alcotest.(check bool) "b is v1 or v2, complete" true
    (b = Some "b-v1" || b = Some "b-v2");
  (* first member already swapped in, second not yet *)
  Alcotest.(check (option string)) "a got v2 before crash" (Some "a-v2") a;
  Alcotest.(check (option string)) "b still v1" (Some "b-v1") b;
  (* retry completes the update — extra installations are not harmful *)
  (match push ~files:[ ("a.db", "a-v2"); ("b.db", "b-v2") ] net with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "retry failed");
  Alcotest.(check (option string)) "b now v2" (Some "b-v2")
    (Netsim.Vfs.read fs ~path:"/etc/data/b.db")

let test_crash_after_exec_repeat_harmless () =
  (* Install succeeded but the confirmation was lost: the DCM will
     repeat the update; repeating is harmless. *)
  let _, net, srv, _ = setup () in
  Netsim.Host.arm_crash srv ~point:"after_exec";
  (match push net with
  | Error (Dcm.Update.Soft _) -> ()
  | _ -> Alcotest.fail "lost confirmation not soft");
  Netsim.Host.boot srv;
  let fs = Netsim.Host.fs srv in
  (* files were installed even though the DCM saw a failure *)
  Alcotest.(check (option string)) "already installed" (Some "alpha\n")
    (Netsim.Vfs.read fs ~path:"/etc/data/a.db");
  (* the repeat is a no-op functionally *)
  (match push net with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "repeat failed");
  Alcotest.(check (option string)) "still installed" (Some "alpha\n")
    (Netsim.Vfs.read fs ~path:"/etc/data/a.db")

let test_checksum_detects_corruption () =
  (* Corrupt data with a valid-looking frame: serve a hostile
     man-in-the-middle by calling the update service directly with a
     wrong checksum. *)
  let _, net, _, _ = setup () in
  let archive = Dcm.Tarlike.pack [ ("a", "data") ] in
  let payload =
    Gdb.Wire.encode_request
      {
        Gdb.Wire.version = Gdb.Wire.protocol_version;
        conn = 0;
        op = 32 (* op_xfer *);
        args = [ "krb"; "/tmp/out"; archive; "00000000" ];
        ctx = "";
      }
  in
  match Netsim.Net.call net ~src:"MOIRA" ~dst:"SRV" ~service:"moira_update" payload with
  | Ok raw -> (
      match Gdb.Wire.decode_reply raw with
      | Ok reply ->
          Alcotest.(check int) "checksum error" Moira.Mr_err.update_checksum
            reply.Gdb.Wire.code
      | Error e -> Alcotest.fail e)
  | Error _ -> Alcotest.fail "call failed"

(* Execution-phase instruction 3: revert puts the previous version back
   after an erroneous installation. *)
let test_revert_instruction () =
  let _, net, srv, up = setup () in
  Dcm.Update.register_script up ~name:"revert.sh"
    (Dcm.Update.revert_files srv ~dir:"/etc/data" ());
  ignore (push ~files:[ ("a.db", "good-v1") ] net);
  ignore (push ~files:[ ("a.db", "broken-v2") ] net);
  let fs = Netsim.Host.fs srv in
  Alcotest.(check (option string)) "v2 live" (Some "broken-v2")
    (Netsim.Vfs.read fs ~path:"/etc/data/a.db");
  Alcotest.(check (option string)) "v1 saved aside" (Some "good-v1")
    (Netsim.Vfs.read fs ~path:"/etc/data/a.db.moira_old");
  (* the operator pushes the same archive with the revert script *)
  (match
     Dcm.Update.push net ~src:"MOIRA" ~dst:"SRV" ~target:"/tmp/out"
       ~files:(docs [ ("a.db", "broken-v2") ]) ~script:"revert.sh" ()
   with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "revert push failed");
  Alcotest.(check (option string)) "v1 back in place" (Some "good-v1")
    (Netsim.Vfs.read fs ~path:"/etc/data/a.db")

let test_tarlike_roundtrip () =
  let members = [ ("a", "aaa"); ("b/with/slash", ""); ("c", "c:c\nc") ] in
  (match Dcm.Tarlike.unpack (Dcm.Tarlike.pack members) with
  | Ok m -> Alcotest.(check bool) "roundtrip" true (m = members)
  | Error e -> Alcotest.fail e);
  Alcotest.(check (option string)) "member extraction" (Some "aaa")
    (Dcm.Tarlike.member (Dcm.Tarlike.pack members) "a");
  match Dcm.Tarlike.unpack "garbage with no header" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage unpacked"

let test_checksum_function () =
  Alcotest.(check bool) "differs" true
    (Dcm.Checksum.adler32 "abc" <> Dcm.Checksum.adler32 "abd");
  Alcotest.(check bool) "verify ok" true
    (Dcm.Checksum.verify ~data:"hello"
       ~checksum:(Dcm.Checksum.to_hex (Dcm.Checksum.adler32 "hello")));
  Alcotest.(check bool) "verify corrupt" false
    (Dcm.Checksum.verify ~data:"hellp"
       ~checksum:(Dcm.Checksum.to_hex (Dcm.Checksum.adler32 "hello")))

(* Delta pushes (against [target^".last"]).  The first push of a target
   must go full; a repeat with mostly-unchanged members must ride the
   manifest exchange, keeping unchanged members off the wire. *)

let big_files ~version =
  List.init 20 (fun i ->
      let body = String.make 2048 (Char.chr (Char.code 'a' + (i mod 26))) in
      (Printf.sprintf "m%02d.db" i, body ^ version ^ "\n"))

let test_second_push_is_delta () =
  let _, net, srv, _ = setup () in
  let v1 = big_files ~version:"v1" in
  let s1 =
    match push ~files:v1 net with
    | Ok s -> s
    | Error _ -> Alcotest.fail "first push failed"
  in
  Alcotest.(check bool) "first push is full" false s1.Dcm.Update.delta;
  (* change one member out of twenty *)
  let v2 =
    List.map
      (fun (n, c) -> (n, if n = "m03.db" then c ^ "edit\n" else c))
      v1
  in
  let s2 =
    match
      Dcm.Update.push net ~src:"MOIRA" ~dst:"SRV" ~base:(docs v1)
        ~target:"/tmp/out" ~files:(docs v2) ~script:"install.sh" ()
    with
    | Ok s -> s
    | Error _ -> Alcotest.fail "delta push failed"
  in
  Alcotest.(check bool) "second push is delta" true s2.Dcm.Update.delta;
  Alcotest.(check int) "19 members kept" 19 s2.Dcm.Update.members_kept;
  Alcotest.(check bool) "changed member shipped" true
    (s2.Dcm.Update.members_patched + s2.Dcm.Update.members_full = 1);
  Alcotest.(check bool)
    (Printf.sprintf "wire %d < 10%% of archive %d" s2.Dcm.Update.wire_bytes
       s2.Dcm.Update.archive_bytes)
    true
    (s2.Dcm.Update.wire_bytes * 10 < s2.Dcm.Update.archive_bytes);
  let fs = Netsim.Host.fs srv in
  Alcotest.(check (option string)) "edited member installed"
    (List.assoc_opt "m03.db" v2)
    (Netsim.Vfs.read fs ~path:"/etc/data/m03.db");
  Alcotest.(check (option string)) "kept member installed"
    (List.assoc_opt "m07.db" v2)
    (Netsim.Vfs.read fs ~path:"/etc/data/m07.db")

let test_delta_push_crash_mid_install () =
  (* The delta path reconstructs and stages the full archive before
     execution, so section 5.9's mid-install analysis is unchanged: a
     crash between member swaps leaves every file fully old or fully
     new, and the retry completes. *)
  let _, net, srv, _ = setup () in
  ignore (push ~files:[ ("a.db", "a-v1"); ("b.db", "b-v1") ] net);
  Netsim.Host.arm_crash srv ~point:"mid_install";
  let v2 = [ ("a.db", "a-v2"); ("b.db", "b-v2") ] in
  let delta_push () =
    Dcm.Update.push net ~src:"MOIRA" ~dst:"SRV"
      ~base:(docs [ ("a.db", "a-v1"); ("b.db", "b-v1") ]) ~target:"/tmp/out"
      ~files:(docs v2) ~script:"install.sh" ()
  in
  (match delta_push () with
  | Error (Dcm.Update.Soft _) -> ()
  | _ -> Alcotest.fail "mid-install crash not soft");
  Netsim.Host.boot srv;
  let fs = Netsim.Host.fs srv in
  let a = Netsim.Vfs.read fs ~path:"/etc/data/a.db" in
  let b = Netsim.Vfs.read fs ~path:"/etc/data/b.db" in
  Alcotest.(check bool) "a complete" true (a = Some "a-v1" || a = Some "a-v2");
  Alcotest.(check bool) "b complete" true (b = Some "b-v1" || b = Some "b-v2");
  (match delta_push () with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "retry failed");
  Alcotest.(check (option string)) "a v2 after retry" (Some "a-v2")
    (Netsim.Vfs.read fs ~path:"/etc/data/a.db");
  Alcotest.(check (option string)) "b v2 after retry" (Some "b-v2")
    (Netsim.Vfs.read fs ~path:"/etc/data/b.db")

let test_garbage_last_falls_back_to_full () =
  (* A corrupt server-side base must not poison the push: the manifest /
     reconstruction disagreement turns into a full transfer in the same
     push, and the install is correct. *)
  let _, net, srv, _ = setup () in
  ignore (push ~files:[ ("a.db", "a-v1") ] net);
  let fs = Netsim.Host.fs srv in
  Netsim.Vfs.write fs ~path:"/tmp/out.last" "garbage, not an archive";
  let s =
    match
      Dcm.Update.push net ~src:"MOIRA" ~dst:"SRV"
        ~base:(docs [ ("a.db", "a-v1") ]) ~target:"/tmp/out"
        ~files:(docs [ ("a.db", "a-v2") ]) ~script:"install.sh" ()
    with
    | Ok s -> s
    | Error _ -> Alcotest.fail "push with garbage base failed"
  in
  Alcotest.(check bool) "fell back to full" false s.Dcm.Update.delta;
  Alcotest.(check (option string)) "installed despite garbage base"
    (Some "a-v2")
    (Netsim.Vfs.read fs ~path:"/etc/data/a.db")

let test_stale_base_on_client_still_correct () =
  (* The DCM's kept base can be wrong (e.g. after a restart it guesses):
     patches carry their base checksum, so a stale client base degrades
     to full members, never to corrupt installs. *)
  let _, net, srv, _ = setup () in
  ignore (push ~files:[ ("a.db", "a-v1"); ("b.db", "b-v1") ] net);
  (match
     Dcm.Update.push net ~src:"MOIRA" ~dst:"SRV"
       ~base:(docs [ ("a.db", "WRONG"); ("b.db", "b-v1") ]) ~target:"/tmp/out"
       ~files:(docs [ ("a.db", "a-v2"); ("b.db", "b-v2") ])
       ~script:"install.sh" ()
   with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "push with stale client base failed");
  let fs = Netsim.Host.fs srv in
  Alcotest.(check (option string)) "a correct" (Some "a-v2")
    (Netsim.Vfs.read fs ~path:"/etc/data/a.db");
  Alcotest.(check (option string)) "b correct" (Some "b-v2")
    (Netsim.Vfs.read fs ~path:"/etc/data/b.db")

(* Every durable file on the host except in-flight staging — the state
   that must match a clean push after a reply-loss retry. *)
let state_of srv =
  let fs = Netsim.Host.fs srv in
  Netsim.Vfs.list fs
  |> List.filter (fun p -> not (Filename.check_suffix p ".moira_update"))
  |> List.sort compare
  |> List.map (fun p ->
         (p, Option.value (Netsim.Vfs.read fs ~path:p) ~default:""))

(* Reply loss is the idempotence hazard: the server executed the
   operation, but the DCM saw Timeout and re-sends it.  Drop the reply
   of each operation of the protocol in turn and check the retried push
   converges to exactly the clean-push state. *)
let full_push_ops = [ "manifest"; "xfer"; "script"; "flush"; "exec" ]
let delta_push_ops = [ "manifest"; "delta"; "script"; "flush"; "exec" ]

let test_reply_loss_idempotent_full_push () =
  let _, cnet, csrv, _ = setup () in
  (match push cnet with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "clean reference push failed");
  let want = state_of csrv in
  List.iteri
    (fun i op ->
      let _, net, srv, _ = setup () in
      Netsim.Net.arm_reply_drop net ~dst:"SRV" ~skip:i 1;
      (match
         Dcm.Update.push net ~src:"MOIRA" ~dst:"SRV" ~attempts:2
           ~target:"/tmp/out"
           ~files:(docs [ ("a.db", "alpha\n"); ("b.db", "beta\n") ])
           ~script:"install.sh" ()
       with
      | Ok s ->
          Alcotest.(check bool)
            (op ^ " reply lost: op was re-sent")
            true
            (s.Dcm.Update.op_retries >= 1)
      | Error _ -> Alcotest.fail (op ^ " reply lost: push failed"));
      Alcotest.(check bool)
        (op ^ " reply lost: state equals clean push")
        true
        (state_of srv = want))
    full_push_ops

let test_reply_loss_idempotent_delta_push () =
  let v1 = [ ("a.db", "a-v1\n"); ("b.db", "b-v1\n") ] in
  let v2 = [ ("a.db", "a-v2\n"); ("b.db", "b-v1\n") ] in
  let delta_push net =
    Dcm.Update.push net ~src:"MOIRA" ~dst:"SRV" ~base:(docs v1) ~attempts:2
      ~target:"/tmp/out" ~files:(docs v2) ~script:"install.sh" ()
  in
  let _, cnet, csrv, _ = setup () in
  ignore (push ~files:v1 cnet);
  (match delta_push cnet with
  | Ok s ->
      Alcotest.(check bool) "reference push is a delta" true
        s.Dcm.Update.delta
  | Error _ -> Alcotest.fail "clean reference delta push failed");
  let want = state_of csrv in
  List.iteri
    (fun i op ->
      let _, net, srv, _ = setup () in
      ignore (push ~files:v1 net);
      Netsim.Net.arm_reply_drop net ~dst:"SRV" ~skip:i 1;
      (match delta_push net with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail (op ^ " reply lost: delta push failed"));
      Alcotest.(check bool)
        (op ^ " reply lost: state equals clean push")
        true
        (state_of srv = want))
    delta_push_ops

let test_reply_loss_exec_runs_script_once () =
  (* The exec confirm carries the archive checksum: a server that
     already installed it must acknowledge the repeat, not run the
     script twice. *)
  let engine = Sim.Engine.create () in
  let net = Netsim.Net.create engine in
  let srv = Netsim.Net.add_host net "SRV" in
  ignore (Netsim.Net.add_host net "MOIRA");
  let up = Dcm.Update.serve srv in
  let runs = ref 0 in
  Dcm.Update.register_script up ~name:"install.sh" (fun ~staged ->
      incr runs;
      Dcm.Update.install_files srv ~dir:"/etc/data" () ~staged);
  (* the exec op is the 5th (index 4) of a full push *)
  Netsim.Net.arm_reply_drop net ~dst:"SRV" ~skip:4 1;
  (match
     Dcm.Update.push net ~src:"MOIRA" ~dst:"SRV" ~attempts:2
       ~target:"/tmp/out"
       ~files:(docs [ ("a.db", "alpha\n") ])
       ~script:"install.sh" ()
   with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "push failed");
  Alcotest.(check int) "script ran exactly once" 1 !runs;
  Alcotest.(check (option string)) "file installed" (Some "alpha\n")
    (Netsim.Vfs.read (Netsim.Host.fs srv) ~path:"/etc/data/a.db")

let prop_tarlike_roundtrip =
  QCheck.Test.make ~name:"tarlike: pack/unpack roundtrip" ~count:200
    QCheck.(
      list_of_size (Gen.int_range 0 5)
        (pair (string_of_size (Gen.int_range 1 20))
           (string_of_size (Gen.int_range 0 50))))
    (fun members -> Dcm.Tarlike.unpack (Dcm.Tarlike.pack members) = Ok members)

let suite =
  [
    Alcotest.test_case "successful update" `Quick test_successful_update;
    Alcotest.test_case "install survives reboot" `Quick
      test_install_survives_crash_after_install;
    Alcotest.test_case "bad auth token" `Quick test_bad_auth_token;
    Alcotest.test_case "unknown script hard" `Quick
      test_unknown_script_is_hard_error;
    Alcotest.test_case "host down soft" `Quick test_host_down_is_soft;
    Alcotest.test_case "crash during transfer" `Quick
      test_crash_during_transfer;
    Alcotest.test_case "crash before exec" `Quick test_crash_before_exec;
    Alcotest.test_case "crash mid-install atomicity" `Quick
      test_crash_mid_install_leaves_consistent_files;
    Alcotest.test_case "lost confirmation" `Quick
      test_crash_after_exec_repeat_harmless;
    Alcotest.test_case "checksum detects corruption" `Quick
      test_checksum_detects_corruption;
    Alcotest.test_case "revert instruction" `Quick test_revert_instruction;
    Alcotest.test_case "second push is delta" `Quick test_second_push_is_delta;
    Alcotest.test_case "delta push crash mid-install" `Quick
      test_delta_push_crash_mid_install;
    Alcotest.test_case "garbage .last falls back to full" `Quick
      test_garbage_last_falls_back_to_full;
    Alcotest.test_case "stale client base still correct" `Quick
      test_stale_base_on_client_still_correct;
    Alcotest.test_case "reply loss idempotent (full push, every op)" `Quick
      test_reply_loss_idempotent_full_push;
    Alcotest.test_case "reply loss idempotent (delta push, every op)" `Quick
      test_reply_loss_idempotent_delta_push;
    Alcotest.test_case "reply loss: exec runs script once" `Quick
      test_reply_loss_exec_runs_script_once;
    Alcotest.test_case "tarlike roundtrip" `Quick test_tarlike_roundtrip;
    Alcotest.test_case "checksum function" `Quick test_checksum_function;
    QCheck_alcotest.to_alcotest prop_tarlike_roundtrip;
  ]
