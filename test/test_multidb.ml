(* The multiple-database capability of paper section 5.1.D: query
   handles bound to a secondary database answered through the same
   server and protocol as the primary one. *)

open Moira

let find_query name =
  List.find (fun q -> q.Query.name = name) (Catalog.standard ())

(* Build an "archive" database holding one former user. *)
let archive_mdb clock =
  let mdb = Mdb.create ~clock in
  let glue = Glue.create ~mdb ~registry:(Catalog.make ()) () in
  (match
     Glue.query glue ~name:"add_user"
       [ "oldtimer"; "501"; "/bin/csh"; "Timer"; "Old"; ""; "3"; "h";
         "1989" ]
   with
  | Ok _ -> ()
  | Error c -> Alcotest.fail (Comerr.Com_err.error_message c));
  mdb

let archive_queries mdb =
  Catalog.bind_database mdb
    [
      Catalog.rename ~name:"get_archived_user" ~short:"gaur"
        (find_query "get_user_by_login");
      Catalog.rename ~name:"get_archived_machines" ~short:"gamc"
        (find_query "get_machine");
    ]

let test_direct_dispatch () =
  let clock = fun () -> 1000 in
  let primary = Mdb.create ~clock in
  let archive = archive_mdb clock in
  let registry = Catalog.make ~extra:(archive_queries archive) () in
  let glue = Glue.create ~mdb:primary ~registry () in
  (* "the application merely passes a query handle": the same call
     shape reaches a different database *)
  (match Glue.query glue ~name:"get_archived_user" [ "oldtimer" ] with
  | Ok [ row ] -> Alcotest.(check string) "from archive" "oldtimer" (List.hd row)
  | _ -> Alcotest.fail "archive lookup failed");
  (* the primary is untouched: the same login is absent there *)
  match Glue.query glue ~name:"get_user_by_login" [ "oldtimer" ] with
  | Error code when code = Mr_err.no_match -> ()
  | _ -> Alcotest.fail "primary unexpectedly has the archived user"

let test_over_the_wire () =
  (* the same mechanism through a real server and the RPC library *)
  let engine = Sim.Engine.create ~start:568_000_000_000 () in
  let net = Netsim.Net.create engine in
  let clock = Sim.Engine.clock_sec engine in
  let kdc = Krb.Kdc.create ~clock () in
  let primary = Mdb.create ~clock in
  let archive = archive_mdb clock in
  let srv_host = Netsim.Net.add_host net "MOIRA.MIT.EDU" in
  ignore (Netsim.Net.add_host net "WS.MIT.EDU");
  let _server =
    Mr_server.create ~extra_queries:(archive_queries archive) ~net
      ~host:srv_host ~mdb:primary ~kdc ()
  in
  let c = Mr_client.create net ~src:"WS.MIT.EDU" in
  Alcotest.(check int) "connect" 0 (Mr_client.mr_connect c ~dst:"MOIRA.MIT.EDU");
  (* the archive user may query about himself once authenticated; but
     get_archived_machines is open to everyone — use that anonymously *)
  (match Mr_client.mr_query_list c ~name:"get_archived_machines" [ "*" ] with
  | Error code when code = Mr_err.no_match -> () (* archive has no machines *)
  | Ok _ -> Alcotest.fail "archive should have no machines"
  | Error code -> Alcotest.fail (Comerr.Com_err.error_message code));
  (* _list_queries shows the bound handles alongside the standard ones *)
  match Mr_client.mr_query_list c ~name:"_list_queries" [] with
  | Ok rows ->
      Alcotest.(check bool) "archive handle listed" true
        (List.mem [ "get_archived_user"; "gaur" ] rows);
      Alcotest.(check bool) "standard handle listed" true
        (List.exists (fun r -> List.hd r = "get_user_by_login") rows)
  | Error code -> Alcotest.fail (Comerr.Com_err.error_message code)

let test_access_rules_follow_binding () =
  (* the bound handle's ACL check consults the *archive* capacls, not
     the primary's *)
  let clock = fun () -> 1000 in
  let primary = Mdb.create ~clock in
  let archive = archive_mdb clock in
  let registry = Catalog.make ~extra:(archive_queries archive) () in
  let ctx =
    { Query.mdb = primary; caller = "oldtimer"; client = "t";
      privileged = false; trace = "" }
  in
  (* oldtimer exists only in the archive; the self-access rule of
     get_user_by_login must evaluate against the archive and admit him *)
  match Query.execute registry ctx ~name:"get_archived_user" [ "oldtimer" ] with
  | Ok [ _ ] -> ()
  | Ok _ -> Alcotest.fail "wrong rows"
  | Error code -> Alcotest.fail (Comerr.Com_err.error_message code)

let suite =
  [
    Alcotest.test_case "direct dispatch" `Quick test_direct_dispatch;
    Alcotest.test_case "over the wire" `Quick test_over_the_wire;
    Alcotest.test_case "access rules follow binding" `Quick
      test_access_rules_follow_binding;
  ]
