(* The DCM file generators: content fidelity against the formats of
   paper section 5.8.2 (the example file contents). *)

(* Materialize the doc for string assertions.  [Sink.to_string] on a
   one-chunk doc returns the chunk itself, so the physical-sharing check
   below still observes the generator's own sharing. *)
let find_file files name =
  match List.assoc_opt name files with
  | Some c -> Dcm.Sink.to_string c
  | None -> Alcotest.failf "generator produced no %s" name

let lines s =
  String.split_on_char '\n' s |> List.filter (fun l -> l <> "")

let line_for prefix contents =
  match
    List.find_opt
      (fun l ->
        String.length l >= String.length prefix
        && String.sub l 0 (String.length prefix) = prefix)
      (lines contents)
  with
  | Some l -> l
  | None -> Alcotest.failf "no line starting with %S" prefix

(* a small world, built through the fixture *)
let build () =
  let t = Fix.create () in
  ignore
    (Fix.must t "add_server_info"
       [ "POP"; "0"; ""; ""; "UNIQUE"; "1"; "LIST"; "moira-admins" ]);
  ignore
    (Fix.must t "add_server_host_info"
       [ "POP"; "E40-PO.MIT.EDU"; "1"; "0"; "100"; "" ]);
  ignore (Fix.must t "set_pobox" [ "ann"; "POP"; "E40-PO.MIT.EDU" ]);
  ignore
    (Fix.must t "add_list"
       [ "video-users"; "1"; "1"; "0"; "1"; "0"; "-1"; "USER"; "ann";
         "video people" ]);
  ignore (Fix.must t "add_member_to_list" [ "video-users"; "USER"; "ann" ]);
  ignore (Fix.must t "add_member_to_list" [ "video-users"; "USER"; "bob" ]);
  ignore
    (Fix.must t "add_member_to_list"
       [ "video-users"; "STRING"; "rubin@media-lab.mit.edu" ]);
  ignore
    (Fix.must t "add_list"
       [ "annsgroup"; "1"; "0"; "0"; "0"; "1"; "10914"; "USER"; "ann"; "g" ]);
  ignore (Fix.must t "add_member_to_list" [ "annsgroup"; "USER"; "ann" ]);
  ignore
    (Fix.must t "add_printcap"
       [ "linus"; "CHARON.MIT.EDU"; "/usr/spool/printer/linus"; "linus";
         "" ]);
  ignore (Fix.must t "add_service" [ "smtp"; "TCP"; "25"; "mail" ]);
  ignore
    (Fix.must t "add_filesys"
       [ "aab"; "NFS"; "NFS-1.MIT.EDU"; "/u1/lockers/aab"; "/mit/aab"; "w";
         ""; "ann"; "annsgroup"; "1"; "PROJECT" ]);
  ignore (Fix.must t "add_nfs_quota" [ "aab"; "ann"; "300" ]);
  ignore
    (Fix.must t "add_server_info"
       [ "HESIOD"; "360"; "/tmp/h"; "h.sh"; "REPLICAT"; "1"; "LIST";
         "moira-admins" ]);
  ignore
    (Fix.must t "add_server_host_info"
       [ "HESIOD"; "SUOMI.MIT.EDU"; "1"; "0"; "0"; "" ]);
  ignore (Fix.must t "add_cluster" [ "bldge40-vs"; "d"; "E40" ]);
  ignore
    (Fix.must t "add_cluster_data"
       [ "bldge40-vs"; "zephyr"; "neskaya.mit.edu" ]);
  ignore (Fix.must t "add_cluster" [ "bldge40-rt"; "d"; "E40" ]);
  ignore (Fix.must t "add_cluster_data" [ "bldge40-rt"; "lpr"; "e40" ]);
  (* one machine in one cluster, one in two (pseudo-cluster case) *)
  ignore (Fix.must t "add_machine" [ "TOTO.MIT.EDU"; "RT" ]);
  ignore (Fix.must t "add_machine_to_cluster" [ "TOTO.MIT.EDU"; "bldge40-rt" ]);
  ignore (Fix.must t "add_machine" [ "SCARECROW.MIT.EDU"; "RT" ]);
  ignore
    (Fix.must t "add_machine_to_cluster" [ "SCARECROW.MIT.EDU"; "bldge40-rt" ]);
  ignore
    (Fix.must t "add_machine_to_cluster" [ "SCARECROW.MIT.EDU"; "bldge40-vs" ]);
  ignore
    (Fix.must t "add_zephyr_class"
       [ "message"; "LIST"; "video-users"; "NONE"; "NONE"; "NONE"; "NONE";
         "NONE"; "NONE" ]);
  t

let hesiod_files t = (Dcm.Gen_hesiod.generator.Dcm.Gen.generate t.Fix.glue).Dcm.Gen.common

let test_passwd_db_format () =
  let t = build () in
  let passwd = find_file (hesiod_files t) "passwd.db" in
  (* ann.passwd HS UNSPECA "ann:*:2001:101:Ann B Alpha,,,,:/mit/ann:/bin/csh" *)
  Alcotest.(check string) "paper format"
    "ann.passwd HS UNSPECA \"ann:*:2001:101:Ann B Alpha,,,,:/mit/ann:/bin/csh\""
    (line_for "ann.passwd" passwd)

let test_uid_db_cname () =
  let t = build () in
  let uid = find_file (hesiod_files t) "uid.db" in
  Alcotest.(check string) "cname to passwd entry"
    "2001.uid HS CNAME ann.passwd"
    (line_for "2001.uid" uid)

let test_pobox_db_format () =
  let t = build () in
  let pobox = find_file (hesiod_files t) "pobox.db" in
  Alcotest.(check string) "paper format"
    "ann.pobox HS UNSPECA \"POP E40-PO.MIT.EDU ann\""
    (line_for "ann.pobox" pobox)

let test_group_and_gid_db () =
  let t = build () in
  let files = hesiod_files t in
  Alcotest.(check string) "group entry"
    "annsgroup.group HS UNSPECA \"annsgroup:*:10914:\""
    (line_for "annsgroup.group" (find_file files "group.db"));
  Alcotest.(check string) "gid cname"
    "10914.gid HS CNAME annsgroup.group"
    (line_for "10914.gid" (find_file files "gid.db"))

let test_grplist_pairs () =
  let t = build () in
  let grplist = find_file (hesiod_files t) "grplist.db" in
  Alcotest.(check string) "name:gid pairs"
    "ann.grplist HS UNSPECA \"annsgroup:10914\""
    (line_for "ann.grplist" grplist)

let test_filsys_db_format () =
  let t = build () in
  let filsys = find_file (hesiod_files t) "filsys.db" in
  (* short lowercase hostname, as in the paper's "charon" example *)
  Alcotest.(check string) "paper format"
    "aab.filsys HS UNSPECA \"NFS /u1/lockers/aab nfs-1 w /mit/aab\""
    (line_for "aab.filsys" filsys)

let test_printcap_db_format () =
  let t = build () in
  let pcap = find_file (hesiod_files t) "printcap.db" in
  Alcotest.(check string) "paper format"
    "linus.pcap HS UNSPECA \"linus:rp=linus:rm=CHARON.MIT.EDU:sd=/usr/spool/printer/linus\""
    (line_for "linus.pcap" pcap)

let test_service_db_format () =
  let t = build () in
  let svc = find_file (hesiod_files t) "service.db" in
  Alcotest.(check string) "paper format"
    "smtp.service HS UNSPECA \"smtp tcp 25\""
    (line_for "smtp.service" svc)

let test_sloc_db_format () =
  let t = build () in
  let sloc = find_file (hesiod_files t) "sloc.db" in
  Alcotest.(check string) "paper format"
    "HESIOD.sloc HS UNSPECA SUOMI.MIT.EDU"
    (line_for "HESIOD.sloc" sloc)

let test_cluster_db_pseudo_cluster () =
  let t = build () in
  let cluster = find_file (hesiod_files t) "cluster.db" in
  (* single-cluster machine: CNAME straight to the cluster *)
  Alcotest.(check string) "plain cname"
    "TOTO.MIT.EDU.cluster HS CNAME bldge40-rt.cluster"
    (line_for "TOTO.MIT.EDU.cluster" cluster);
  (* dual-cluster machine: CNAME to a pseudo-cluster holding the union *)
  Alcotest.(check string) "pseudo cname"
    "SCARECROW.MIT.EDU.cluster HS CNAME scarecrow.mit.edu-pseudo.cluster"
    (line_for "SCARECROW.MIT.EDU.cluster" cluster);
  let pseudo_lines =
    List.filter
      (fun l ->
        String.length l > 30
        && String.sub l 0 30 = "scarecrow.mit.edu-pseudo.clust")
      (lines cluster)
  in
  Alcotest.(check int) "union of both clusters' data" 2
    (List.length pseudo_lines);
  (* and the parsed resolution sees the union *)
  let db = Hesiod.Hes_db.parse cluster in
  Alcotest.(check int) "resolve through pseudo" 2
    (List.length
       (Hesiod.Hes_db.resolve db ~name:"SCARECROW.MIT.EDU" ~ty:"cluster"))

let test_inactive_excluded () =
  let t = build () in
  (* deactivate bob: he must vanish from passwd/pobox extracts *)
  ignore (Fix.must t "update_user_status" [ "bob"; "3" ]);
  let files = hesiod_files t in
  let passwd = find_file files "passwd.db" in
  Alcotest.(check bool) "bob gone from passwd" false
    (List.exists
       (fun l -> String.length l > 3 && String.sub l 0 3 = "bob")
       (lines passwd));
  (* inactive list excluded from group.db *)
  ignore
    (Fix.must t "update_list"
       [ "annsgroup"; "annsgroup"; "0"; "0"; "0"; "0"; "1"; "10914"; "USER";
         "ann"; "g" ]);
  let files = hesiod_files t in
  let group = find_file files "group.db" in
  Alcotest.(check bool) "inactive group gone" false
    (List.exists
       (fun l ->
         String.length l > 9 && String.sub l 0 9 = "annsgroup")
       (lines group))

let test_mail_aliases_format () =
  let t = build () in
  let out = Dcm.Gen_mail.generator.Dcm.Gen.generate t.Fix.glue in
  let aliases = find_file out.Dcm.Gen.common "aliases" in
  Alcotest.(check string) "owner line"
    "owner-video-users: ann"
    (line_for "owner-video-users:" aliases);
  Alcotest.(check string) "membership line, sorted"
    "video-users: ann, bob, rubin@media-lab.mit.edu"
    (line_for "video-users:" aliases);
  Alcotest.(check string) "pobox forwarding"
    "ann: ann@E40-PO.LOCAL"
    (line_for "ann:" aliases)

let test_nfs_files () =
  let t = build () in
  let out = Dcm.Gen_nfs.generator.Dcm.Gen.generate t.Fix.glue in
  (* the fixture has no NFS serverhosts: nothing to build *)
  Alcotest.(check int) "no hosts, no files" 0
    (List.length out.Dcm.Gen.per_host);
  ignore
    (Fix.must t "add_server_info"
       [ "NFS"; "720"; "/t"; "nfs.sh"; "UNIQUE"; "1"; "LIST";
         "moira-admins" ]);
  ignore
    (Fix.must t "add_server_host_info"
       [ "NFS"; "NFS-1.MIT.EDU"; "1"; "0"; "0"; "" ]);
  let out = Dcm.Gen_nfs.generator.Dcm.Gen.generate t.Fix.glue in
  match out.Dcm.Gen.per_host with
  | [ (machine, files) ] ->
      Alcotest.(check string) "host" "NFS-1.MIT.EDU" machine;
      let creds = find_file files "credentials" in
      Alcotest.(check string) "login:uid:gids" "ann:2001:10914"
        (line_for "ann:" creds);
      let quotas = find_file files "u1_lockers.quotas" in
      Alcotest.(check string) "uid quota" "2001 300" (line_for "2001" quotas);
      let dirs = find_file files "u1_lockers.dirs" in
      Alcotest.(check string) "dir uid gid type"
        "/u1/lockers/aab 2001 10914 PROJECT"
        (line_for "/u1/lockers/aab" dirs)
  | _ -> Alcotest.fail "expected one host"

let test_nfs_credentials_restricted_by_value3 () =
  let t = build () in
  ignore
    (Fix.must t "add_server_info"
       [ "NFS"; "720"; "/t"; "nfs.sh"; "UNIQUE"; "1"; "LIST";
         "moira-admins" ]);
  (* value3 names a list: only its (recursive) members get credentials *)
  ignore
    (Fix.must t "add_server_host_info"
       [ "NFS"; "NFS-1.MIT.EDU"; "1"; "0"; "0"; "annsgroup" ]);
  let out = Dcm.Gen_nfs.generator.Dcm.Gen.generate t.Fix.glue in
  match out.Dcm.Gen.per_host with
  | [ (_, files) ] ->
      let creds = find_file files "credentials" in
      let ls = lines creds in
      Alcotest.(check int) "only ann" 1 (List.length ls);
      Alcotest.(check bool) "it is ann" true
        (String.sub (List.hd ls) 0 4 = "ann:")
  | _ -> Alcotest.fail "expected one host"

(* Hosts with an empty value3 all want the same all-active-users file;
   the generator must build it once per generation and hand every such
   host the very same string — while a value3-restricted host still gets
   its own. *)
let test_nfs_credentials_shared_across_hosts () =
  let t = build () in
  ignore
    (Fix.must t "add_server_info"
       [ "NFS"; "720"; "/t"; "nfs.sh"; "UNIQUE"; "1"; "LIST";
         "moira-admins" ]);
  ignore
    (Fix.must t "add_server_host_info"
       [ "NFS"; "NFS-1.MIT.EDU"; "1"; "0"; "0"; "" ]);
  ignore
    (Fix.must t "add_server_host_info"
       [ "NFS"; "SUOMI.MIT.EDU"; "1"; "0"; "0"; "" ]);
  ignore
    (Fix.must t "add_server_host_info"
       [ "NFS"; "CHARON.MIT.EDU"; "1"; "0"; "0"; "annsgroup" ]);
  let out = Dcm.Gen_nfs.generator.Dcm.Gen.generate t.Fix.glue in
  let creds machine =
    find_file (List.assoc machine out.Dcm.Gen.per_host) "credentials"
  in
  let a = creds "NFS-1.MIT.EDU" and b = creds "SUOMI.MIT.EDU" in
  Alcotest.(check string) "byte-identical across empty-value3 hosts" a b;
  Alcotest.(check bool) "built once, physically shared" true (a == b);
  (* and it really is the unrestricted build, not the restricted one *)
  Alcotest.(check string) "all active users present" "ann:2001:10914"
    (line_for "ann:" a);
  Alcotest.(check bool) "bob included" true
    (List.exists
       (fun l -> String.length l >= 4 && String.sub l 0 4 = "bob:")
       (lines a));
  let restricted = creds "CHARON.MIT.EDU" in
  Alcotest.(check bool) "value3 host keeps its own file" true
    (restricted <> a);
  Alcotest.(check int) "restricted to annsgroup" 1
    (List.length (lines restricted))

let test_zephyr_acl_files () =
  let t = build () in
  let out = Dcm.Gen_zephyr.generator.Dcm.Gen.generate t.Fix.glue in
  let acl = find_file out.Dcm.Gen.common "message.acl" in
  Alcotest.(check string) "expanded membership" "ann\nbob\n" acl;
  (* a NONE xmt ACL becomes the wildcard, as in the paper's example *)
  ignore
    (Fix.must t "add_zephyr_class"
       [ "open"; "NONE"; "NONE"; "NONE"; "NONE"; "NONE"; "NONE"; "NONE";
         "NONE" ]);
  let out = Dcm.Gen_zephyr.generator.Dcm.Gen.generate t.Fix.glue in
  Alcotest.(check string) "wildcard for NONE" "*.*@*\n"
    (find_file out.Dcm.Gen.common "open.acl")

let test_generated_files_parse_as_hesiod () =
  let t = build () in
  let files = hesiod_files t in
  List.iter
    (fun (name, contents) ->
      let contents = Dcm.Sink.to_string contents in
      let db = Hesiod.Hes_db.parse contents in
      let expected = List.length (lines contents) in
      (* every generated line must parse into a record *)
      let total =
        List.fold_left
          (fun acc l ->
            acc
            + (match Hesiod.Hes_db.parse l with
              | db -> Hesiod.Hes_db.size db))
          0 (lines contents)
      in
      Alcotest.(check int) (name ^ " all lines parse") expected total;
      ignore db)
    files

let suite =
  [
    Alcotest.test_case "passwd.db format" `Quick test_passwd_db_format;
    Alcotest.test_case "uid.db cname" `Quick test_uid_db_cname;
    Alcotest.test_case "pobox.db format" `Quick test_pobox_db_format;
    Alcotest.test_case "group/gid.db" `Quick test_group_and_gid_db;
    Alcotest.test_case "grplist pairs" `Quick test_grplist_pairs;
    Alcotest.test_case "filsys.db format" `Quick test_filsys_db_format;
    Alcotest.test_case "printcap.db format" `Quick test_printcap_db_format;
    Alcotest.test_case "service.db format" `Quick test_service_db_format;
    Alcotest.test_case "sloc.db format" `Quick test_sloc_db_format;
    Alcotest.test_case "pseudo-clusters" `Quick
      test_cluster_db_pseudo_cluster;
    Alcotest.test_case "inactive excluded" `Quick test_inactive_excluded;
    Alcotest.test_case "aliases format" `Quick test_mail_aliases_format;
    Alcotest.test_case "NFS files" `Quick test_nfs_files;
    Alcotest.test_case "credentials via value3" `Quick
      test_nfs_credentials_restricted_by_value3;
    Alcotest.test_case "credentials shared across hosts" `Quick
      test_nfs_credentials_shared_across_hosts;
    Alcotest.test_case "zephyr acl files" `Quick test_zephyr_acl_files;
    Alcotest.test_case "all hesiod lines parse" `Quick
      test_generated_files_parse_as_hesiod;
  ]
