(* The GDB RPC layer: wire framing, client/server connections. *)

let test_wire_request_roundtrip () =
  let req =
    { Gdb.Wire.version = 2; conn = 7; op = 18;
      args = [ "get_user_by_login"; "ann"; ""; "multi\nline:with\000nul" ];
      ctx = "t#1/#2" }
  in
  match Gdb.Wire.decode_request (Gdb.Wire.encode_request req) with
  | Ok r ->
      Alcotest.(check int) "version" req.Gdb.Wire.version r.Gdb.Wire.version;
      Alcotest.(check int) "conn" req.conn r.conn;
      Alcotest.(check int) "op" req.op r.op;
      Alcotest.(check (list string)) "args" req.args r.args;
      Alcotest.(check string) "ctx" req.ctx r.ctx
  | Error e -> Alcotest.fail e

(* A frame without the trailing context decodes with [ctx = ""], and a
   context-free request encodes byte-identically to that old format. *)
let test_wire_ctx_optional () =
  let req =
    { Gdb.Wire.version = 2; conn = 7; op = 18; args = [ "x" ]; ctx = "" }
  in
  let enc = Gdb.Wire.encode_request req in
  (match Gdb.Wire.decode_request enc with
  | Ok r -> Alcotest.(check string) "empty ctx" "" r.Gdb.Wire.ctx
  | Error e -> Alcotest.fail e);
  let with_ctx = Gdb.Wire.encode_request { req with ctx = "t#9/#4" } in
  Alcotest.(check bool) "trailer only when present" true
    (String.length with_ctx > String.length enc
    && String.sub with_ctx 0 (String.length enc) = enc)

let test_wire_reply_roundtrip () =
  let rep =
    { Gdb.Wire.rversion = 2; code = 42;
      tuples = [ [ "a"; "b" ]; []; [ "single" ] ] }
  in
  match Gdb.Wire.decode_reply (Gdb.Wire.encode_reply rep) with
  | Ok r ->
      Alcotest.(check int) "code" 42 r.Gdb.Wire.code;
      Alcotest.(check int) "tuples" 3 (List.length r.tuples);
      Alcotest.(check (list (list string))) "contents" rep.Gdb.Wire.tuples
        r.tuples
  | Error e -> Alcotest.fail e

let test_wire_garbage () =
  (match Gdb.Wire.decode_request "not a frame" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage request parsed");
  match Gdb.Wire.decode_reply "9999999\nxx" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage reply parsed"

let test_wire_truncated () =
  let good =
    Gdb.Wire.encode_request
      { Gdb.Wire.version = 2; conn = 0; op = 1; args = [ "hello" ]; ctx = "" }
  in
  let truncated = String.sub good 0 (String.length good - 3) in
  match Gdb.Wire.decode_request truncated with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated request parsed"

let setup ?backend ?(max_connections = 64) () =
  let engine = Sim.Engine.create () in
  let net = Netsim.Net.create engine in
  let srv_host = Netsim.Net.add_host net "SRV" in
  ignore (Netsim.Net.add_host net "CLI");
  let server =
    Gdb.Server.create ?backend ~max_connections ~net ~host:srv_host
      ~service:"app"
      ~init:(fun ~peer -> ref peer)
      ~handler:(fun info req ->
        if req.Gdb.Wire.op = 100 then (0, [ [ !(info.Gdb.Server.state) ] ])
        else if req.op = 101 then begin
          info.Gdb.Server.state := String.concat "," req.args;
          (0, [])
        end
        else (Moira.Mr_err.no_handle, []))
      ()
  in
  (engine, net, server)

let connect net =
  match Gdb.Client.connect net ~src:"CLI" ~dst:"SRV" ~service:"app" with
  | Ok c -> c
  | Error e -> Alcotest.fail (Gdb.Client.error_to_string e)

let test_connect_call_disconnect () =
  let _, net, server = setup () in
  let c = connect net in
  Alcotest.(check bool) "connected" true (Gdb.Client.is_connected c);
  Alcotest.(check int) "server sees 1 conn" 1
    (Gdb.Server.connection_count server);
  (match Gdb.Client.call c ~op:100 [] with
  | Ok (0, [ [ "CLI" ] ]) -> ()
  | Ok _ -> Alcotest.fail "unexpected reply"
  | Error e -> Alcotest.fail (Gdb.Client.error_to_string e));
  (match Gdb.Client.disconnect c with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Gdb.Client.error_to_string e));
  Alcotest.(check int) "conn closed on server" 0
    (Gdb.Server.connection_count server)

let test_per_connection_state () =
  let _, net, _ = setup () in
  let c1 = connect net and c2 = connect net in
  ignore (Gdb.Client.call c1 ~op:101 [ "one" ]);
  ignore (Gdb.Client.call c2 ~op:101 [ "two" ]);
  (match Gdb.Client.call c1 ~op:100 [] with
  | Ok (0, [ [ "one" ] ]) -> ()
  | _ -> Alcotest.fail "c1 state clobbered");
  match Gdb.Client.call c2 ~op:100 [] with
  | Ok (0, [ [ "two" ] ]) -> ()
  | _ -> Alcotest.fail "c2 state clobbered"

let test_unknown_connection_rejected () =
  let _, net, _ = setup () in
  let c = connect net in
  ignore (Gdb.Client.disconnect c);
  match Gdb.Client.call c ~op:100 [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "closed connection worked"

let test_max_connections () =
  let _, net, _ = setup ~max_connections:2 () in
  let _c1 = connect net and _c2 = connect net in
  match Gdb.Client.connect net ~src:"CLI" ~dst:"SRV" ~service:"app" with
  | Error (Gdb.Client.Rpc code) when code = Gdb.Gdb_err.too_many_connections ->
      ()
  | _ -> Alcotest.fail "third connection accepted"

let test_backend_cost_per_server () =
  let engine = Sim.Engine.create () in
  let net = Netsim.Net.create engine in
  let host = Netsim.Net.add_host net "SRV" in
  ignore (Netsim.Net.add_host net "CLI");
  let t0 = Sim.Engine.now engine in
  let _server =
    Gdb.Server.create ~backend:(Gdb.Server.Per_server 1500) ~net ~host
      ~service:"app"
      ~init:(fun ~peer:_ -> ())
      ~handler:(fun _ _ -> (0, []))
      ()
  in
  Alcotest.(check int) "paid at startup" 1500 (Sim.Engine.now engine - t0);
  let before = Sim.Engine.now engine in
  (match Gdb.Client.connect net ~src:"CLI" ~dst:"SRV" ~service:"app" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Gdb.Client.error_to_string e));
  Alcotest.(check bool) "connect is cheap" true
    (Sim.Engine.now engine - before < 1500)

let test_backend_cost_per_connection () =
  let engine = Sim.Engine.create () in
  let net = Netsim.Net.create engine in
  let host = Netsim.Net.add_host net "SRV" in
  ignore (Netsim.Net.add_host net "CLI");
  let _server =
    Gdb.Server.create ~backend:(Gdb.Server.Per_connection 1500) ~net ~host
      ~service:"app"
      ~init:(fun ~peer:_ -> ())
      ~handler:(fun _ _ -> (0, []))
      ()
  in
  let before = Sim.Engine.now engine in
  (match Gdb.Client.connect net ~src:"CLI" ~dst:"SRV" ~service:"app" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Gdb.Client.error_to_string e));
  Alcotest.(check bool) "connect pays the spawn" true
    (Sim.Engine.now engine - before >= 1500)

let test_requests_served_counter () =
  let _, net, server = setup () in
  let c = connect net in
  ignore (Gdb.Client.call c ~op:100 []);
  ignore (Gdb.Client.call c ~op:100 []);
  Alcotest.(check int) "served" 2 (Gdb.Server.requests_served server)

(* Version skew: a request carrying a different protocol version is
   rejected cleanly with the version-skew code (section 5.3: version
   numbers "allow clean handling of version skew"). *)
let test_version_skew_rejected () =
  let _, net, _ = setup () in
  let stale =
    Gdb.Wire.encode_request
      { Gdb.Wire.version = Gdb.Wire.protocol_version + 7; conn = 0;
        op = Gdb.Wire.op_open; args = []; ctx = "" }
  in
  match Netsim.Net.call net ~src:"CLI" ~dst:"SRV" ~service:"app" stale with
  | Ok raw -> (
      match Gdb.Wire.decode_reply raw with
      | Ok reply ->
          Alcotest.(check int) "version skew code" Gdb.Gdb_err.version_skew
            reply.Gdb.Wire.code
      | Error e -> Alcotest.fail e)
  | Error _ -> Alcotest.fail "call failed"

let prop_wire_request_roundtrip =
  QCheck.Test.make ~name:"wire: request roundtrip" ~count:300
    QCheck.(
      quad (int_range 0 100) (int_range 0 1000) (int_range 0 64)
        (list_of_size (Gen.int_range 0 5) (string_of_size (Gen.int_range 0 30))))
    (fun (version, conn, op, args) ->
      let ctx = match args with a :: _ when a <> "" -> "t#1/" ^ a | _ -> "" in
      let req = { Gdb.Wire.version; conn; op; args; ctx } in
      Gdb.Wire.decode_request (Gdb.Wire.encode_request req) = Ok req)

let prop_wire_reply_roundtrip =
  QCheck.Test.make ~name:"wire: reply roundtrip" ~count:300
    QCheck.(
      pair (int_range 0 100000)
        (list_of_size (Gen.int_range 0 4)
           (list_of_size (Gen.int_range 0 4)
              (string_of_size (Gen.int_range 0 20)))))
    (fun (code, tuples) ->
      let rep = { Gdb.Wire.rversion = 2; code; tuples } in
      Gdb.Wire.decode_reply (Gdb.Wire.encode_reply rep) = Ok rep)

let suite =
  [
    Alcotest.test_case "wire request roundtrip" `Quick
      test_wire_request_roundtrip;
    Alcotest.test_case "wire reply roundtrip" `Quick test_wire_reply_roundtrip;
    Alcotest.test_case "wire ctx optional" `Quick test_wire_ctx_optional;
    Alcotest.test_case "wire garbage" `Quick test_wire_garbage;
    Alcotest.test_case "wire truncated" `Quick test_wire_truncated;
    Alcotest.test_case "connect/call/disconnect" `Quick
      test_connect_call_disconnect;
    Alcotest.test_case "per-connection state" `Quick
      test_per_connection_state;
    Alcotest.test_case "unknown connection rejected" `Quick
      test_unknown_connection_rejected;
    Alcotest.test_case "max connections" `Quick test_max_connections;
    Alcotest.test_case "backend cost per server" `Quick
      test_backend_cost_per_server;
    Alcotest.test_case "backend cost per connection" `Quick
      test_backend_cost_per_connection;
    Alcotest.test_case "requests served" `Quick test_requests_served_counter;
    Alcotest.test_case "version skew" `Quick test_version_skew_rejected;
    QCheck_alcotest.to_alcotest prop_wire_request_roundtrip;
    QCheck_alcotest.to_alcotest prop_wire_reply_roundtrip;
  ]
