(* Directed fault-tolerance tests for the update pipeline (section
   5.7.1 / 5.9): crash-recovery sweep, soft-failure quarantine with
   deduplicated notification, notification fallback, lock hygiene under
   generator exceptions, and convergence under sustained message loss.
   The statistical end of the same story runs in `bench chaos`. *)

open Workload
open Relation

(* A retry policy scaled for 15-minute test cycles: quarantine after two
   consecutive failed cycles, negligible backoff. *)
let fast_quarantine =
  {
    Dcm.Manager.op_attempts = 2;
    push_attempts = 1;
    backoff_base_s = 1;
    backoff_max_s = 1;
    backoff_jitter = 0.0;
    quarantine_after = 2;
  }

let shost_field tb ~service ~machine col =
  let mdb = tb.Testbed.mdb in
  let shosts = Moira.Mdb.table mdb "serverhosts" in
  let mach_id =
    match Moira.Lookup.machine_id mdb machine with
    | Some id -> id
    | None -> Alcotest.failf "no machine %s" machine
  in
  match
    Table.select_one shosts
      (Pred.conj
         [ Pred.eq_str "service" service; Pred.eq_int "mach_id" mach_id ])
  with
  | Some (_, row) -> Table.field shosts row col
  | None -> Alcotest.failf "no serverhosts row %s/%s" service machine

(* Every non-POP serverhosts row except [but] shows success and no
   hosterror. *)
let assert_fleet_converged ?but tb =
  let shosts = Moira.Mdb.table tb.Testbed.mdb "serverhosts" in
  Table.fold shosts ~init:() ~f:(fun () _ row ->
      let service = Value.str (Table.field shosts row "service") in
      let machine =
        Option.value
          (Moira.Lookup.machine_name tb.Testbed.mdb
             (Value.int (Table.field shosts row "mach_id")))
          ~default:"?"
      in
      if service <> "POP" && but <> Some (service, machine) then begin
        Alcotest.(check bool)
          (Printf.sprintf "%s on %s has no hosterror" service machine)
          true
          (Value.int (Table.field shosts row "hosterror") = 0);
        Alcotest.(check bool)
          (Printf.sprintf "%s on %s succeeded" service machine)
          true
          (Value.bool (Table.field shosts row "success"))
      end)

(* --- crash-recovery sweep ------------------------------------------- *)

let test_recovery_sweep_clears_crash_leftovers () =
  let tb = Testbed.create () in
  ignore (Dcm.Manager.run tb.Testbed.dcm);
  (* simulate a DCM that died mid-run: inprogress flags set in both
     tables, service and host locks still owned by "dcm" *)
  let mdb = tb.Testbed.mdb in
  let servers = Moira.Mdb.table mdb "servers" in
  let shosts = Moira.Mdb.table mdb "serverhosts" in
  ignore
    (Table.set_fields servers
       (Pred.eq_str "name" "HESIOD")
       [ ("inprogress", Value.Bool true) ]);
  ignore
    (Table.set_fields shosts
       (Pred.eq_str "service" "HESIOD")
       [ ("inprogress", Value.Bool true) ]);
  let locks = Moira.Mdb.locks mdb in
  let hes_machine = tb.Testbed.built.Population.hesiod_machines.(0) in
  Alcotest.(check bool) "stranded service lock taken" true
    (Lock.acquire locks ~key:"service:HESIOD" ~owner:"dcm" Lock.Exclusive);  (* lint: allow lock-protect -- seeding a stranded lock for the recovery sweep to release *)
  Alcotest.(check bool) "stranded host lock taken" true
    (Lock.acquire locks  (* lint: allow lock-protect -- seeding a stranded lock for the recovery sweep to release *)
       ~key:("host:HESIOD/" ^ hes_machine)
       ~owner:"dcm" Lock.Exclusive);
  let sweep = Dcm.Manager.recovery_sweep tb.Testbed.dcm in
  Alcotest.(check int) "servers rows cleared" 1
    sweep.Dcm.Manager.services_cleared;
  Alcotest.(check bool) "serverhosts rows cleared" true
    (sweep.Dcm.Manager.hosts_cleared >= 1);
  Alcotest.(check int) "orphaned locks released" 2
    sweep.Dcm.Manager.locks_released;
  (* flags really are gone, and the locks are free for the next cycle *)
  Alcotest.(check bool) "no inprogress servers row" true
    (Table.select servers (Pred.eq_bool "inprogress" true) = []);
  Alcotest.(check bool) "no inprogress serverhosts row" true
    (Table.select shosts (Pred.eq_bool "inprogress" true) = []);
  Alcotest.(check bool) "service lock free" true
    (Lock.acquire locks ~key:"service:HESIOD" ~owner:"probe" Lock.Exclusive);  (* lint: allow lock-protect -- probe asserts the lock is free; released on the next line *)
  Lock.release locks ~key:"service:HESIOD" ~owner:"probe";
  (* the next cycle completes unaided: a new change generates and
     propagates with no operator intervention *)
  Sim.Engine.advance tb.Testbed.engine 60_000;
  ignore
    (Moira.Glue.query tb.Testbed.glue ~name:"update_user_shell"
       [ tb.Testbed.built.Population.logins.(0); "/bin/postcrash" ]);
  Sim.Engine.advance tb.Testbed.engine (7 * 3600 * 1000);
  let report = Dcm.Manager.run tb.Testbed.dcm in
  let hes =
    List.find
      (fun s -> s.Dcm.Manager.service = "HESIOD")
      report.Dcm.Manager.services
  in
  (match hes.Dcm.Manager.gen with
  | Dcm.Manager.Generated _ -> ()
  | _ -> Alcotest.fail "HESIOD did not regenerate after the sweep");
  (match List.assoc_opt hes_machine hes.Dcm.Manager.hosts with
  | Some (Dcm.Manager.Updated _) -> ()
  | _ -> Alcotest.fail "host not updated after the sweep");
  assert_fleet_converged tb

(* --- quarantine escalation ------------------------------------------ *)

let test_quarantine_one_notification_per_incident () =
  let tb = Testbed.create ~retry:fast_quarantine () in
  let hes_machine = tb.Testbed.built.Population.hesiod_machines.(0) in
  Netsim.Host.crash (Testbed.host tb hes_machine);
  Testbed.run_hours tb 3;
  (* the host is quarantined: hosterror set, errmsg says so *)
  Alcotest.(check bool) "hosterror set" true
    (Value.int (shost_field tb ~service:"HESIOD" ~machine:hes_machine
                  "hosterror")
    <> 0);
  let errmsg =
    Value.str
      (shost_field tb ~service:"HESIOD" ~machine:hes_machine "hosterrmsg")
  in
  Alcotest.(check bool) "errmsg names the quarantine" true
    (String.length errmsg >= 11 && String.sub errmsg 0 11 = "quarantined");
  (* exactly one zephyrgram for the whole incident, however long it
     lasts *)
  let z = List.assoc tb.Testbed.built.Population.zephyr_machines.(0)
      tb.Testbed.zephyrs
  in
  let quarantine_notices () =
    Zephyr.notices_for z ~cls:"MOIRA"
    |> List.filter (fun n ->
           let msg = n.Zephyr.message in
           let needle = "quarantined" in
           let rec find i =
             if i + String.length needle > String.length msg then false
             else String.sub msg i (String.length needle) = needle || find (i + 1)
           in
           find 0)
  in
  Alcotest.(check int) "one notice for the incident" 1
    (List.length (quarantine_notices ()));
  Testbed.run_hours tb 5;
  Alcotest.(check int) "still one notice hours later" 1
    (List.length (quarantine_notices ()));
  (* the quarantined host is excluded from scans: no retries burn the
     wire, and the rest of the fleet is unaffected *)
  assert_fleet_converged ~but:("HESIOD", hes_machine) tb;
  (* operator resets the error; the host recovers on the next cycles *)
  Netsim.Host.boot (Testbed.host tb hes_machine);
  ignore
    (Moira.Glue.query tb.Testbed.glue ~name:"set_server_host_internal"
       [ "HESIOD"; hes_machine; "1"; "0"; "0"; "0"; ""; "0"; "0" ]);
  Testbed.run_hours tb 1;
  assert_fleet_converged tb

(* --- notification fallback and drop accounting ---------------------- *)

let sum_notices tb =
  List.fold_left
    (fun (s, d) r ->
      (s + r.Dcm.Manager.notices_sent, d + r.Dcm.Manager.notices_dropped))
    (0, 0)
    (Dcm.Manager.reports tb.Testbed.dcm)

let test_notify_falls_back_to_mail () =
  let tb = Testbed.create ~retry:fast_quarantine () in
  let hes_machine = tb.Testbed.built.Population.hesiod_machines.(0) in
  let zephyr_machine = tb.Testbed.built.Population.zephyr_machines.(0) in
  (* one clean cycle first, so the hub has its aliases file *)
  Testbed.run_minutes tb 20;
  Netsim.Host.crash (Testbed.host tb hes_machine);
  Netsim.Host.crash (Testbed.host tb zephyr_machine);
  (* a change the dead hesiod host will fail to receive once its
     service's interval elapses *)
  ignore
    (Moira.Glue.query tb.Testbed.glue ~name:"update_user_shell"
       [ tb.Testbed.built.Population.logins.(0); "/bin/fallback" ]);
  Testbed.run_hours tb 8;
  let sent, dropped = sum_notices tb in
  (* the zephyr host is down, but the quarantine notices still reach the
     maintainers by mail: delivered, not silently lost *)
  Alcotest.(check bool) "notices delivered via mail fallback" true (sent >= 1);
  Alcotest.(check int) "nothing dropped" 0 dropped;
  let z = List.assoc zephyr_machine tb.Testbed.zephyrs in
  Alcotest.(check int) "no zephyrgram landed (host was down)" 0
    (List.length (Zephyr.notices_for z ~cls:"MOIRA"))

let test_notify_drop_is_counted () =
  let tb = Testbed.create ~retry:fast_quarantine () in
  let hes_machine = tb.Testbed.built.Population.hesiod_machines.(0) in
  let zephyr_machine = tb.Testbed.built.Population.zephyr_machines.(0) in
  let hub = tb.Testbed.built.Population.mail_hub in
  Netsim.Host.crash (Testbed.host tb hes_machine);
  Netsim.Host.crash (Testbed.host tb zephyr_machine);
  Netsim.Host.crash (Testbed.host tb hub);
  Testbed.run_hours tb 3;
  let sent, dropped = sum_notices tb in
  Alcotest.(check int) "nothing deliverable" 0 sent;
  Alcotest.(check bool) "drops are counted, not silent" true (dropped >= 1)

(* --- lock hygiene under generator exceptions ------------------------ *)

let test_generator_exception_releases_lock () =
  let tb = Testbed.create () in
  let bad =
    Dcm.Gen.monolithic ~service:"HESIOD"
      ~watches:[ Dcm.Gen.watch "users" ]
      (fun _ -> failwith "generator exploded")
  in
  let dcm2 =
    Dcm.Manager.create ~net:tb.Testbed.net
      ~moira_host:tb.Testbed.built.Population.moira_machine
      ~glue:tb.Testbed.glue ~generators:[ bad ] ()
  in
  let report = Dcm.Manager.run dcm2 in
  (match report.Dcm.Manager.services with
  | [ { Dcm.Manager.gen = Dcm.Manager.Gen_failed msg; _ } ] ->
      Alcotest.(check bool) "failure message surfaced" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "exception did not surface as Gen_failed");
  (* neither the lock nor the inprogress flag leaked *)
  let locks = Moira.Mdb.locks tb.Testbed.mdb in
  Alcotest.(check bool) "service lock was released" true
    (Lock.acquire locks ~key:"service:HESIOD" ~owner:"probe" Lock.Exclusive);  (* lint: allow lock-protect -- probe asserts the lock is free; released on the next line *)
  Lock.release locks ~key:"service:HESIOD" ~owner:"probe";
  let servers = Moira.Mdb.table tb.Testbed.mdb "servers" in
  Alcotest.(check bool) "inprogress cleared" true
    (Table.select servers (Pred.eq_bool "inprogress" true) = [])

(* --- host-lock contention is recorded ------------------------------- *)

let test_host_lock_failure_moves_ltt () =
  let tb = Testbed.create () in
  let hes_machine = tb.Testbed.built.Population.hesiod_machines.(0) in
  let locks = Moira.Mdb.locks tb.Testbed.mdb in
  Alcotest.(check bool) "intruder holds the host lock" true
    (Lock.acquire locks  (* lint: allow lock-protect -- intruder holds the lock so the cycle must contend; released below *)
       ~key:("host:HESIOD/" ^ hes_machine)
       ~owner:"intruder" Lock.Exclusive);
  let report = Dcm.Manager.run tb.Testbed.dcm in
  let hes =
    List.find
      (fun s -> s.Dcm.Manager.service = "HESIOD")
      report.Dcm.Manager.services
  in
  (match List.assoc_opt hes_machine hes.Dcm.Manager.hosts with
  | Some (Dcm.Manager.Soft_failed _) -> ()
  | _ -> Alcotest.fail "locked host should soft-fail");
  (* the tuple records that the DCM tried: ltt moved, errmsg says why *)
  Alcotest.(check bool) "ltt moved" true
    (Value.int (shost_field tb ~service:"HESIOD" ~machine:hes_machine "ltt")
    > 0);
  Alcotest.(check string) "errmsg records the reason" "host locked"
    (Value.str (shost_field tb ~service:"HESIOD" ~machine:hes_machine
                  "hosterrmsg"));
  Lock.release locks ~key:("host:HESIOD/" ^ hes_machine) ~owner:"intruder"

(* --- restart resumes persisted retry state -------------------------- *)

(* The per-host failure count and backoff window live in the serverhosts
   value1/value2 columns, so a restarted DCM (a brand-new manager over
   the same database) must carry an incident forward: with
   quarantine_after = 2, one pre-restart failed cycle plus one
   post-restart failed cycle quarantines the host.  A DCM that forgot
   its state would merely soft-fail again. *)
let test_restart_resumes_retry_state () =
  let tb = Testbed.create ~retry:fast_quarantine () in
  let hes_machine = tb.Testbed.built.Population.hesiod_machines.(0) in
  Netsim.Host.crash (Testbed.host tb hes_machine);
  let report = Dcm.Manager.run tb.Testbed.dcm in
  let hes =
    List.find
      (fun s -> s.Dcm.Manager.service = "HESIOD")
      report.Dcm.Manager.services
  in
  (match List.assoc_opt hes_machine hes.Dcm.Manager.hosts with
  | Some (Dcm.Manager.Soft_failed _) -> ()
  | _ -> Alcotest.fail "dead host should soft-fail before restart");
  Alcotest.(check int) "failure count persisted" 1
    (Value.int
       (shost_field tb ~service:"HESIOD" ~machine:hes_machine "value1"));
  Alcotest.(check bool) "backoff window persisted" true
    (Value.int (shost_field tb ~service:"HESIOD" ~machine:hes_machine "value2")
    > 0);
  (* "restart": a fresh manager over the same database and network,
     created past the 1 s backoff window *)
  Sim.Engine.advance tb.Testbed.engine 5_000;
  let dcm2 =
    Dcm.Manager.create ~net:tb.Testbed.net
      ~moira_host:tb.Testbed.built.Population.moira_machine
      ~glue:tb.Testbed.glue ~retry:fast_quarantine ()
  in
  let report2 = Dcm.Manager.run dcm2 in
  let hes2 =
    List.find
      (fun s -> s.Dcm.Manager.service = "HESIOD")
      report2.Dcm.Manager.services
  in
  (match List.assoc_opt hes_machine hes2.Dcm.Manager.hosts with
  | Some (Dcm.Manager.Quarantined _) -> ()
  | Some _ | None ->
      Alcotest.fail
        "restarted DCM forgot the failure count: second failure should \
         quarantine");
  Alcotest.(check bool) "hosterror set" true
    (Value.int
       (shost_field tb ~service:"HESIOD" ~machine:hes_machine "hosterror")
    <> 0);
  (* the open incident is persisted too (negated count), so yet another
     restart stays quiet instead of re-notifying *)
  Alcotest.(check int) "notified incident persisted" (-2)
    (Value.int
       (shost_field tb ~service:"HESIOD" ~machine:hes_machine "value1"));
  (* operator reset clears the columns through the normal path *)
  Netsim.Host.boot (Testbed.host tb hes_machine);
  ignore
    (Moira.Glue.query tb.Testbed.glue ~name:"set_server_host_internal"
       [ "HESIOD"; hes_machine; "1"; "0"; "0"; "0"; ""; "0"; "0" ]);
  Sim.Engine.advance tb.Testbed.engine 5_000;
  let report3 = Dcm.Manager.run dcm2 in
  let hes3 =
    List.find
      (fun s -> s.Dcm.Manager.service = "HESIOD")
      report3.Dcm.Manager.services
  in
  (match List.assoc_opt hes_machine hes3.Dcm.Manager.hosts with
  | Some (Dcm.Manager.Updated _) -> ()
  | _ -> Alcotest.fail "host should recover after operator reset");
  Alcotest.(check int) "retry state cleared on success" 0
    (Value.int
       (shost_field tb ~service:"HESIOD" ~machine:hes_machine "value1"))

(* --- telemetry accounts for every protocol operation ----------------- *)

let test_telemetry_accounts_for_every_op () =
  let tb = Testbed.create () in
  Netsim.Net.set_drop_rate tb.Testbed.net 0.2;
  Netsim.Net.set_reply_drop_rate tb.Testbed.net 0.1;
  ignore
    (Moira.Glue.query tb.Testbed.glue ~name:"update_user_shell"
       [ tb.Testbed.built.Population.logins.(0); "/bin/counted" ]);
  Testbed.run_hours tb 6;
  let o = Testbed.obs tb in
  let ctr n = Option.value ~default:0 (Obs.find_counter o n) in
  let failed =
    List.fold_left
      (fun a (n, v) ->
        if Obs.glob_match "update.ops.failed.*" n then a + v else a)
      0 (Obs.counters o)
  in
  Alcotest.(check bool) "ops were sent" true (ctr "update.ops.sent" > 0);
  Alcotest.(check bool) "losses forced retries" true
    (ctr "update.ops.retried" > 0);
  (* every send ended exactly one way: acknowledged, re-sent, or counted
     against a named failure kind — nothing vanishes *)
  Alcotest.(check int) "sent = ok + retried + failed"
    (ctr "update.ops.sent")
    (ctr "update.ops.ok" + ctr "update.ops.retried" + failed)

(* --- convergence under sustained loss ------------------------------- *)

let test_converges_under_message_loss () =
  let tb = Testbed.create () in
  Netsim.Net.set_drop_rate tb.Testbed.net 0.2;
  Netsim.Net.set_reply_drop_rate tb.Testbed.net 0.1;
  (* a partition separates half the fleet for 90 minutes mid-run *)
  let managed = Testbed.managed_machines tb in
  let half = List.filteri (fun i _ -> i mod 2 = 0) managed in
  Netsim.Net.partition_window tb.Testbed.net ~hosts:half
    ~at:(Sim.Engine.now tb.Testbed.engine + (2 * 3600 * 1000))
    ~duration_ms:(90 * 60 * 1000);
  ignore
    (Moira.Glue.query tb.Testbed.glue ~name:"update_user_shell"
       [ tb.Testbed.built.Population.logins.(0); "/bin/lossy" ]);
  (* loss stays on the whole time: retries and backoff must carry the
     fleet to convergence anyway *)
  Testbed.run_hours tb 30;
  assert_fleet_converged tb;
  let _, hes = Testbed.first_hesiod tb in
  (match
     Hesiod.Hes_server.resolve_local hes
       ~name:tb.Testbed.built.Population.logins.(0) ~ty:"passwd"
   with
  | [ line ] ->
      let suffix = "/bin/lossy" in
      let n = String.length line and m = String.length suffix in
      Alcotest.(check string) "change propagated despite loss" suffix
        (String.sub line (n - m) m)
  | _ -> Alcotest.fail "user missing from hesiod");
  let stats = Netsim.Net.stats tb.Testbed.net in
  Alcotest.(check bool) "losses actually happened" true
    (stats.Netsim.Net.req_dropped > 0 && stats.Netsim.Net.reply_dropped > 0)

let suite =
  [
    Alcotest.test_case "recovery sweep clears crash leftovers" `Quick
      test_recovery_sweep_clears_crash_leftovers;
    Alcotest.test_case "quarantine: one notification per incident" `Quick
      test_quarantine_one_notification_per_incident;
    Alcotest.test_case "notify falls back to mail" `Quick
      test_notify_falls_back_to_mail;
    Alcotest.test_case "notify drop is counted" `Quick
      test_notify_drop_is_counted;
    Alcotest.test_case "generator exception releases lock" `Quick
      test_generator_exception_releases_lock;
    Alcotest.test_case "host lock failure moves ltt" `Quick
      test_host_lock_failure_moves_ltt;
    Alcotest.test_case "restart resumes persisted retry state" `Quick
      test_restart_resumes_retry_state;
    Alcotest.test_case "telemetry accounts for every op" `Quick
      test_telemetry_accounts_for_every_op;
    Alcotest.test_case "converges under message loss" `Quick
      test_converges_under_message_loss;
  ]
