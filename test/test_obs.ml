(* The sim-time observability layer: the metrics registry, log-scale
   histogram quantiles against a naive sort, the bounded span ring, the
   Chrome trace export's well-formedness, and end-to-end determinism of
   a testbed's registry across two identical seeded runs. *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_counters_and_gauges () =
  let o = Obs.create () in
  let c = Obs.Counter.make o "a.b" in
  Obs.Counter.incr c;
  Obs.Counter.add c 4;
  Alcotest.(check int) "count" 5 (Obs.Counter.get c);
  (* make is find-or-create: a second handle shares the cell *)
  let c' = Obs.Counter.make o "a.b" in
  Obs.Counter.incr c';
  Alcotest.(check int) "shared" 6 (Obs.Counter.get c);
  let g = Obs.Gauge.make o "g" in
  Obs.Gauge.set g 7;
  Obs.Gauge.add g (-2);
  Alcotest.(check int) "gauge" 5 (Obs.Gauge.get g);
  (* the same name cannot be two kinds *)
  (match Obs.Gauge.make o "a.b" with
  | _ -> Alcotest.fail "kind mismatch accepted"
  | exception Invalid_argument _ -> ());
  (* reset zeroes in place; handles stay valid *)
  Obs.reset o;
  Alcotest.(check int) "reset" 0 (Obs.Counter.get c);
  Obs.Counter.incr c;
  Alcotest.(check int) "handle survives reset" 1 (Obs.Counter.get c);
  Alcotest.(check (list (pair string int)))
    "sorted listing"
    [ ("a.b", 1) ]
    (Obs.counters o)

(* Quantiles against a naive sorted-array rank lookup: buckets are exact
   below 64 and log-linear (32 sub-buckets per octave) above, so the
   estimate must sit in [exact, exact * (1 + 1/32)] after clamping. *)
let test_histogram_quantiles () =
  let o = Obs.create () in
  let h = Obs.Histogram.make o "h_ms" in
  let rng = Sim.Rng.create 7 in
  let n = 5000 in
  let samples =
    Array.init n (fun i ->
        match i mod 3 with
        | 0 -> Sim.Rng.int rng 50 (* exact range *)
        | 1 -> Sim.Rng.int rng 10_000
        | _ -> Sim.Rng.int rng 1_000_000)
  in
  Array.iter (Obs.Histogram.observe h) samples;
  Array.sort compare samples;
  Alcotest.(check int) "count" n (Obs.Histogram.count h);
  Alcotest.(check int)
    "sum" (Array.fold_left ( + ) 0 samples)
    (Obs.Histogram.sum h);
  List.iter
    (fun q ->
      let rank = int_of_float (ceil (q *. float_of_int n)) in
      let rank = if rank < 1 then 1 else if rank > n then n else rank in
      let exact = samples.(rank - 1) in
      let est = Obs.Histogram.quantile h q in
      let hi = exact + (exact / 32) + 1 in
      if not (est >= exact && est <= hi) then
        Alcotest.failf "q=%.3f: estimate %d outside [%d, %d]" q est exact hi)
    [ 0.01; 0.10; 0.25; 0.50; 0.75; 0.90; 0.95; 0.99; 1.0 ]

let test_span_ring_overflow () =
  let o = Obs.create ~ring:4 () in
  let t = ref 0 in
  Obs.set_clock o (fun () -> !t);
  for i = 1 to 10 do
    t := i * 10;
    let s = Obs.span_begin o (Printf.sprintf "s%d" i) in
    t := (i * 10) + 5;
    Obs.span_end o s
  done;
  let spans = Obs.completed_spans o in
  Alcotest.(check int) "ring bounds completed spans" 4 (List.length spans);
  Alcotest.(check string)
    "oldest dropped, order kept" "s7"
    (List.hd spans).Obs.sp_name;
  Alcotest.(check string)
    "newest kept" "s10"
    (List.nth spans 3).Obs.sp_name

let test_span_parentage () =
  let o = Obs.create () in
  let t = ref 0 in
  Obs.set_clock o (fun () -> !t);
  Obs.with_span o "outer" (fun () ->
      t := 3;
      Obs.with_span o "inner" (fun () -> t := 9));
  match Obs.completed_spans o with
  | [ inner; outer ] ->
      Alcotest.(check string) "inner first (closed first)" "inner"
        inner.Obs.sp_name;
      Alcotest.(check (option string))
        "parent linked" (Some "outer") inner.Obs.sp_parent;
      Alcotest.(check (option string)) "root" None outer.Obs.sp_parent;
      Alcotest.(check int) "outer duration" 9 outer.Obs.sp_dur_ms
  | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l)

(* The exported stream must be loadable by Chrome: every B has its E,
   nesting never goes negative, and timestamps never step backwards —
   including when spans close out of LIFO order (the CPS style of the
   server) and when a span is still open at export time. *)
let test_trace_well_formed () =
  let o = Obs.create () in
  let t = ref 0 in
  Obs.set_clock o (fun () -> !t);
  let a = Obs.span_begin o "a" in
  t := 5;
  let b = Obs.span_begin o "b" in
  t := 8;
  Obs.span_end o a;
  (* non-LIFO: a closes before b *)
  t := 12;
  Obs.span_end o b;
  t := 20;
  Obs.instant o "blip";
  ignore (Obs.span_begin o "still_open");
  t := 25;
  let evs = Obs.trace_events o in
  let depth = ref 0 and last = ref min_int and pairs = ref 0 in
  List.iter
    (fun e ->
      match e.Obs.ph with
      | 'B' | 'E' ->
          if e.Obs.ph = 'B' then begin
            incr pairs;
            incr depth
          end
          else decr depth;
          Alcotest.(check bool) "depth never negative" true (!depth >= 0);
          Alcotest.(check bool) "timestamps non-decreasing" true
            (e.Obs.ts_us >= !last);
          last := e.Obs.ts_us
      | 'i' -> ()
      | ph -> Alcotest.failf "unexpected phase %c" ph)
    evs;
  Alcotest.(check int) "balanced B/E" 0 !depth;
  Alcotest.(check int) "all three spans exported" 3 !pairs;
  let json = Obs.trace_json o in
  Alcotest.(check bool) "trace json envelope" true
    (contains json "\"traceEvents\"");
  Alcotest.(check bool) "instant exported" true (contains json "\"blip\"")

let test_logs_bounded () =
  let o = Obs.create ~log_ring:3 () in
  for i = 1 to 5 do
    Obs.log o ~channel:"slow_query" (Printf.sprintf "m%d" i)
  done;
  Obs.log o ~channel:"other" "x";
  let l = Obs.logs o ~channel:"slow_query" () in
  (* ring holds 3 entries total; "other" evicted m3 *)
  Alcotest.(check (list string))
    "bounded, filtered, oldest first" [ "m4"; "m5" ]
    (List.map (fun e -> e.Obs.l_msg) l)

(* Two identical seeded testbed runs must leave byte-identical
   registries: every recorded duration is sim time, so wall clock can
   never leak into a metric. *)
let obs_fingerprint () =
  let tb = Workload.Testbed.create () in
  let ws =
    tb.Workload.Testbed.built.Workload.Population.workstation_machines.(0)
  in
  let c = Workload.Testbed.admin_client tb ~src:ws in
  let logins = tb.Workload.Testbed.built.Workload.Population.logins in
  for i = 0 to 5 do
    ignore
      (Moira.Mr_client.mr_query_list c ~name:"get_user_by_login"
         [ logins.(i mod Array.length logins) ])
  done;
  Workload.Testbed.run_minutes tb 20;
  Obs.dump (Workload.Testbed.obs tb)

let test_registry_determinism () =
  let d1 = obs_fingerprint () in
  let d2 = obs_fingerprint () in
  Alcotest.(check string) "identical fingerprints" d1 d2

let suite =
  [
    Alcotest.test_case "counters and gauges" `Quick test_counters_and_gauges;
    Alcotest.test_case "histogram quantiles vs naive sort" `Quick
      test_histogram_quantiles;
    Alcotest.test_case "span ring overflow" `Quick test_span_ring_overflow;
    Alcotest.test_case "span parentage" `Quick test_span_parentage;
    Alcotest.test_case "trace export well-formed" `Quick
      test_trace_well_formed;
    Alcotest.test_case "log ring bounded" `Quick test_logs_bounded;
    Alcotest.test_case "registry deterministic across runs" `Quick
      test_registry_determinism;
  ]
