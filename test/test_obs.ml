(* The sim-time observability layer: the metrics registry, log-scale
   histogram quantiles against a naive sort, the bounded span ring, the
   Chrome trace export's well-formedness, and end-to-end determinism of
   a testbed's registry across two identical seeded runs. *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_counters_and_gauges () =
  let o = Obs.create () in
  let c = Obs.Counter.make o "a.b" in
  Obs.Counter.incr c;
  Obs.Counter.add c 4;
  Alcotest.(check int) "count" 5 (Obs.Counter.get c);
  (* make is find-or-create: a second handle shares the cell *)
  let c' = Obs.Counter.make o "a.b" in
  Obs.Counter.incr c';
  Alcotest.(check int) "shared" 6 (Obs.Counter.get c);
  let g = Obs.Gauge.make o "g" in
  Obs.Gauge.set g 7;
  Obs.Gauge.add g (-2);
  Alcotest.(check int) "gauge" 5 (Obs.Gauge.get g);
  (* the same name cannot be two kinds *)
  (match Obs.Gauge.make o "a.b" with
  | _ -> Alcotest.fail "kind mismatch accepted"
  | exception Invalid_argument _ -> ());
  (* reset zeroes in place; handles stay valid *)
  Obs.reset o;
  Alcotest.(check int) "reset" 0 (Obs.Counter.get c);
  Obs.Counter.incr c;
  Alcotest.(check int) "handle survives reset" 1 (Obs.Counter.get c);
  Alcotest.(check (list (pair string int)))
    "sorted listing"
    [ ("a.b", 1) ]
    (Obs.counters o)

(* Quantiles against a naive sorted-array rank lookup: buckets are exact
   below 64 and log-linear (32 sub-buckets per octave) above, so the
   estimate must sit in [exact, exact * (1 + 1/32)] after clamping. *)
let test_histogram_quantiles () =
  let o = Obs.create () in
  let h = Obs.Histogram.make o "h_ms" in
  let rng = Sim.Rng.create 7 in
  let n = 5000 in
  let samples =
    Array.init n (fun i ->
        match i mod 3 with
        | 0 -> Sim.Rng.int rng 50 (* exact range *)
        | 1 -> Sim.Rng.int rng 10_000
        | _ -> Sim.Rng.int rng 1_000_000)
  in
  Array.iter (Obs.Histogram.observe h) samples;
  Array.sort compare samples;
  Alcotest.(check int) "count" n (Obs.Histogram.count h);
  Alcotest.(check int)
    "sum" (Array.fold_left ( + ) 0 samples)
    (Obs.Histogram.sum h);
  List.iter
    (fun q ->
      let rank = int_of_float (ceil (q *. float_of_int n)) in
      let rank = if rank < 1 then 1 else if rank > n then n else rank in
      let exact = samples.(rank - 1) in
      let est = Obs.Histogram.quantile h q in
      let hi = exact + (exact / 32) + 1 in
      if not (est >= exact && est <= hi) then
        Alcotest.failf "q=%.3f: estimate %d outside [%d, %d]" q est exact hi)
    [ 0.01; 0.10; 0.25; 0.50; 0.75; 0.90; 0.95; 0.99; 1.0 ]

let test_span_ring_overflow () =
  let o = Obs.create ~ring:4 () in
  let t = ref 0 in
  Obs.set_clock o (fun () -> !t);
  for i = 1 to 10 do
    t := i * 10;
    let s = Obs.span_begin o (Printf.sprintf "s%d" i) in
    t := (i * 10) + 5;
    Obs.span_end o s
  done;
  let spans = Obs.completed_spans o in
  Alcotest.(check int) "ring bounds completed spans" 4 (List.length spans);
  Alcotest.(check string)
    "oldest dropped, order kept" "s7"
    (List.hd spans).Obs.sp_name;
  Alcotest.(check string)
    "newest kept" "s10"
    (List.nth spans 3).Obs.sp_name

let test_span_parentage () =
  let o = Obs.create () in
  let t = ref 0 in
  Obs.set_clock o (fun () -> !t);
  Obs.with_span o "outer" (fun () ->
      t := 3;
      Obs.with_span o "inner" (fun () -> t := 9));
  match Obs.completed_spans o with
  | [ inner; outer ] ->
      Alcotest.(check string) "inner first (closed first)" "inner"
        inner.Obs.sp_name;
      Alcotest.(check (option string))
        "parent linked" (Some "outer") inner.Obs.sp_parent;
      Alcotest.(check (option string)) "root" None outer.Obs.sp_parent;
      Alcotest.(check int) "outer duration" 9 outer.Obs.sp_dur_ms
  | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l)

(* The exported stream must be loadable by Chrome: every B has its E,
   nesting never goes negative, and timestamps never step backwards —
   including when spans close out of LIFO order (the CPS style of the
   server) and when a span is still open at export time. *)
let test_trace_well_formed () =
  let o = Obs.create () in
  let t = ref 0 in
  Obs.set_clock o (fun () -> !t);
  let a = Obs.span_begin o "a" in
  t := 5;
  let b = Obs.span_begin o "b" in
  t := 8;
  Obs.span_end o a;
  (* non-LIFO: a closes before b *)
  t := 12;
  Obs.span_end o b;
  t := 20;
  Obs.instant o "blip";
  ignore (Obs.span_begin o "still_open");
  t := 25;
  let evs = Obs.trace_events o in
  let depth = ref 0 and last = ref min_int and pairs = ref 0 in
  List.iter
    (fun e ->
      match e.Obs.ph with
      | 'B' | 'E' ->
          if e.Obs.ph = 'B' then begin
            incr pairs;
            incr depth
          end
          else decr depth;
          Alcotest.(check bool) "depth never negative" true (!depth >= 0);
          Alcotest.(check bool) "timestamps non-decreasing" true
            (e.Obs.ts_us >= !last);
          last := e.Obs.ts_us
      | 'i' -> ()
      | ph -> Alcotest.failf "unexpected phase %c" ph)
    evs;
  Alcotest.(check int) "balanced B/E" 0 !depth;
  Alcotest.(check int) "all three spans exported" 3 !pairs;
  let json = Obs.trace_json o in
  Alcotest.(check bool) "trace json envelope" true
    (contains json "\"traceEvents\"");
  Alcotest.(check bool) "instant exported" true (contains json "\"blip\"")

let test_logs_bounded () =
  let o = Obs.create ~log_ring:3 () in
  for i = 1 to 5 do
    Obs.log o ~channel:"slow_query" (Printf.sprintf "m%d" i)
  done;
  Obs.log o ~channel:"other" "x";
  let l = Obs.logs o ~channel:"slow_query" () in
  (* ring holds 3 entries total; "other" evicted m3 *)
  Alcotest.(check (list string))
    "bounded, filtered, oldest first" [ "m4"; "m5" ]
    (List.map (fun e -> e.Obs.l_msg) l)

(* Two identical seeded testbed runs must leave byte-identical
   registries: every recorded duration is sim time, so wall clock can
   never leak into a metric. *)
let obs_fingerprint () =
  let tb = Workload.Testbed.create () in
  let ws =
    tb.Workload.Testbed.built.Workload.Population.workstation_machines.(0)
  in
  let c = Workload.Testbed.admin_client tb ~src:ws in
  let logins = tb.Workload.Testbed.built.Workload.Population.logins in
  for i = 0 to 5 do
    ignore
      (Moira.Mr_client.mr_query_list c ~name:"get_user_by_login"
         [ logins.(i mod Array.length logins) ])
  done;
  Workload.Testbed.run_minutes tb 20;
  Obs.dump (Workload.Testbed.obs tb)

let test_registry_determinism () =
  let d1 = obs_fingerprint () in
  let d2 = obs_fingerprint () in
  Alcotest.(check string) "identical fingerprints" d1 d2

(* ---- wire contexts: the ctx every protocol carries ---- *)

let test_ctx_wire () =
  let a = Obs.create () in
  Obs.set_origin a "client.mit.edu";
  let sp = Obs.span_begin a "client.query" in
  let ctx = Obs.span_ctx sp in
  (match Obs.current_ctx a with
  | Some c ->
      Alcotest.(check string) "current ctx is the open span" ctx.Obs.span_id
        c.Obs.span_id
  | None -> Alcotest.fail "open span not current");
  let wire = Obs.ctx_to_string ctx in
  (match Obs.ctx_of_string wire with
  | Some c ->
      Alcotest.(check string) "trace id over the wire" ctx.Obs.trace_id
        c.Obs.trace_id;
      Alcotest.(check string) "span id over the wire" ctx.Obs.span_id
        c.Obs.span_id
  | None -> Alcotest.fail "serialized ctx did not parse");
  Alcotest.(check bool) "empty ctx is None" true (Obs.ctx_of_string "" = None);
  Alcotest.(check bool) "malformed ctx is None" true
    (Obs.ctx_of_string "garbage" = None);
  (* a span on another host parented by the wire ctx joins the trace *)
  let b = Obs.create () in
  Obs.set_origin b "server.mit.edu";
  let ssp = Obs.span_begin b ?parent_ctx:(Obs.ctx_of_string wire) "query" in
  Obs.span_end b ssp;
  Obs.span_end a sp;
  match Obs.completed_spans b with
  | [ s ] ->
      Alcotest.(check string) "remote child joins the trace" ctx.Obs.trace_id
        s.Obs.sp_trace;
      Alcotest.(check (option string))
        "remote parent uid kept" (Some ctx.Obs.span_id) s.Obs.sp_parent_id
  | l -> Alcotest.failf "expected 1 span, got %d" (List.length l)

let test_spans_dropped () =
  let o = Obs.create ~ring:4 () in
  for i = 1 to 10 do
    let s = Obs.span_begin o (Printf.sprintf "s%d" i) in
    Obs.span_end o s
  done;
  Alcotest.(check (option int))
    "evictions counted" (Some 6)
    (Obs.find_counter o "obs.spans.dropped");
  (* a child whose local parent was evicted is clamped to a root, not
     exported with a dangling reference *)
  let o = Obs.create ~ring:2 () in
  let p = Obs.span_begin o "parent" in
  Obs.span_end o p;
  let pctx = Obs.span_ctx p in
  List.iter
    (fun n ->
      let s = Obs.span_begin o n in
      Obs.span_end o s)
    [ "f1"; "f2" ];
  let c = Obs.span_begin o ~parent_ctx:pctx "child" in
  Obs.span_end o c;
  match Obs.completed_spans o with
  | [ _; child ] ->
      Alcotest.(check string) "child survived" "child" child.Obs.sp_name;
      Alcotest.(check (option string))
        "orphan clamped to root" None child.Obs.sp_parent_id
  | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l)

(* ---- stitching per-host lanes into one trace ---- *)

let test_merge_lanes () =
  let a = Obs.create () and b = Obs.create () in
  Obs.set_origin a "moira.mit.edu";
  Obs.set_origin b "suomi.mit.edu";
  let root = Obs.span_begin a "client.query" in
  let wire = Obs.ctx_to_string (Obs.span_ctx root) in
  let remote =
    Obs.span_begin b ?parent_ctx:(Obs.ctx_of_string wire) "update.exec"
  in
  Obs.span_end b remote;
  Obs.span_end a root;
  (* an unrelated second trace, for the filter below *)
  let other = Obs.span_begin a "noise" in
  Obs.span_end a other;
  let lanes = [ ("moira.mit.edu", a); ("suomi.mit.edu", b) ] in
  let json = Obs.merge_trace_json lanes in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("merged has " ^ needle) true (contains json needle))
    [
      "\"process_name\"";
      "moira.mit.edu";
      "suomi.mit.edu";
      "\"client.query\"";
      "\"update.exec\"";
      (* the cross-lane parent link renders as a flow arrow pair *)
      "\"ph\":\"s\"";
      "\"ph\":\"f\"";
    ];
  let tid = (Obs.span_ctx root).Obs.trace_id in
  let only = Obs.merge_trace_json ~trace:tid lanes in
  Alcotest.(check bool) "filter keeps the trace" true
    (contains only "\"client.query\"");
  Alcotest.(check bool) "filter drops other traces" false
    (contains only "\"noise\"")

(* ---- cross-host traces under chaos ----
   With a replica and lossy links, every parent reference across the
   union of lanes must resolve (or have been clamped), parent chains
   must be acyclic, and retried update ops must nest under their
   originating dcm.push with the retries visible. *)

let test_cross_host_chaos_trace () =
  let tb = Workload.Testbed.create ~replicas:1 ~repl_poll_ms:30_000 () in
  let net = tb.Workload.Testbed.net in
  (* replica boot-syncs clean; then the weather starts *)
  Workload.Testbed.run_minutes tb 2;
  Netsim.Net.set_drop_rate net 0.3;
  Netsim.Net.set_reply_drop_rate net 0.2;
  let ws =
    tb.Workload.Testbed.built.Workload.Population.workstation_machines.(0)
  in
  let c = Workload.Testbed.admin_client tb ~src:ws in
  let logins = tb.Workload.Testbed.built.Workload.Population.logins in
  for i = 0 to 5 do
    ignore
      (Moira.Mr_client.mr_query_list c ~name:"update_user_shell"
         [ logins.(i); Printf.sprintf "/bin/chaos%d" i ]);
    Workload.Testbed.run_minutes tb 10
  done;
  (* the HESIOD interval fires and the pushes fight the loss *)
  Workload.Testbed.run_hours tb 7;
  let lanes = Workload.Testbed.lanes tb in
  let spans =
    List.concat_map (fun (_, o) -> Obs.completed_spans o) lanes
  in
  Alcotest.(check bool) "spans recorded" true (List.length spans > 0);
  let by_uid = Hashtbl.create 256 in
  List.iter (fun s -> Hashtbl.replace by_uid s.Obs.sp_id s) spans;
  (* every wire ctx resolves somewhere in the union of lanes *)
  List.iter
    (fun s ->
      match s.Obs.sp_parent_id with
      | None -> ()
      | Some u ->
          if not (Hashtbl.mem by_uid u) then
            Alcotest.failf "span %s (%s) has unresolvable parent %s"
              s.Obs.sp_id s.Obs.sp_name u)
    spans;
  (* parent chains terminate: no cycles even across lanes *)
  List.iter
    (fun s ->
      let rec walk u steps =
        if steps > List.length spans then
          Alcotest.failf "parent chain from %s never terminates" s.Obs.sp_id
        else
          match Hashtbl.find_opt by_uid u with
          | None -> ()
          | Some p -> (
              match p.Obs.sp_parent_id with
              | None -> ()
              | Some pu -> walk pu (steps + 1))
      in
      match s.Obs.sp_parent_id with None -> () | Some u -> walk u 0)
    spans;
  (* the commits crossed machines: replica applies joined the traces *)
  let applies =
    List.filter (fun s -> s.Obs.sp_name = "repl.apply") spans
  in
  Alcotest.(check bool) "replica applies present" true (applies <> []);
  (* retries stay nested under the push that issued them *)
  let pushes = Hashtbl.create 32 in
  List.iter
    (fun s ->
      if s.Obs.sp_name = "dcm.push" then Hashtbl.replace pushes s.Obs.sp_id ())
    spans;
  let retried = ref 0 in
  List.iter
    (fun s ->
      if s.Obs.sp_name = "update.op" then begin
        (match s.Obs.sp_parent_id with
        | Some u when not (Hashtbl.mem pushes u) ->
            Alcotest.failf "update.op parent %s is not a dcm.push" u
        | _ -> ());
        if List.assoc_opt "attempt" s.Obs.sp_attrs <> Some "1" then
          incr retried
      end)
    spans;
  Alcotest.(check bool) "loss forced visible retries" true (!retried > 0)

let suite =
  [
    Alcotest.test_case "counters and gauges" `Quick test_counters_and_gauges;
    Alcotest.test_case "histogram quantiles vs naive sort" `Quick
      test_histogram_quantiles;
    Alcotest.test_case "span ring overflow" `Quick test_span_ring_overflow;
    Alcotest.test_case "span parentage" `Quick test_span_parentage;
    Alcotest.test_case "trace export well-formed" `Quick
      test_trace_well_formed;
    Alcotest.test_case "log ring bounded" `Quick test_logs_bounded;
    Alcotest.test_case "registry deterministic across runs" `Quick
      test_registry_determinism;
    Alcotest.test_case "wire ctx round trip and remote parents" `Quick
      test_ctx_wire;
    Alcotest.test_case "eviction counter and orphan clamping" `Quick
      test_spans_dropped;
    Alcotest.test_case "merged lanes, flow arrows, trace filter" `Quick
      test_merge_lanes;
    Alcotest.test_case "cross-host trace well-formed under chaos" `Quick
      test_cross_host_chaos_trace;
  ]
