(* The one-pass membership closure against the naive reference walks:
   equality on deterministic shapes (diamonds, cycles) and randomized
   graphs, plus the stats-keyed memo's refresh behaviour. *)

open Moira

let uid t login = Option.get (Lookup.user_id t.Fix.mdb login)
let lid t name = Option.get (Lookup.list_id t.Fix.mdb name)

let mklist t name =
  ignore
    (Fix.must t "add_list"
       [ name; "1"; "0"; "0"; "0"; "0"; "-1"; "NONE"; "NONE"; "d" ])

let addm t l ty m = ignore (Fix.must t "add_member_to_list" [ l; ty; m ])
let delm t l ty m = ignore (Fix.must t "delete_member_from_list" [ l; ty; m ])

let sorted = List.sort compare

(* closure answers == naive answers, for every list and both users *)
let check_agreement t lists =
  List.iter
    (fun name ->
      let list_id = lid t name in
      Alcotest.(check (list string))
        (name ^ " expand")
        (Acl.expand_users_naive t.Fix.mdb ~list_id)
        (Acl.expand_users t.Fix.mdb ~list_id);
      Alcotest.(check (list int))
        (name ^ " containers")
        (sorted (Acl.containing_lists_naive t.Fix.mdb ~mtype:"LIST" ~mid:list_id))
        (sorted (Acl.containing_lists t.Fix.mdb ~mtype:"LIST" ~mid:list_id)))
    lists;
  List.iter
    (fun login ->
      let mid = uid t login in
      Alcotest.(check (list int))
        (login ^ " containers")
        (sorted (Acl.containing_lists_naive t.Fix.mdb ~mtype:"USER" ~mid))
        (sorted (Acl.containing_lists t.Fix.mdb ~mtype:"USER" ~mid)))
    [ "ann"; "bob" ]

let test_diamond () =
  let t = Fix.create () in
  List.iter (mklist t) [ "top"; "left"; "right"; "bottom" ];
  addm t "top" "LIST" "left";
  addm t "top" "LIST" "right";
  addm t "left" "LIST" "bottom";
  addm t "right" "LIST" "bottom";
  addm t "bottom" "USER" "bob";
  addm t "right" "USER" "ann";
  Alcotest.(check (list string)) "diamond expands once" [ "ann"; "bob" ]
    (Acl.expand_users t.Fix.mdb ~list_id:(lid t "top"));
  check_agreement t [ "top"; "left"; "right"; "bottom" ]

let test_cycle () =
  let t = Fix.create () in
  List.iter (mklist t) [ "a"; "b"; "c" ];
  (* a -> b -> c -> a, with bob at the bottom of the cycle *)
  addm t "a" "LIST" "b";
  addm t "b" "LIST" "c";
  addm t "c" "LIST" "a";
  addm t "c" "USER" "bob";
  List.iter
    (fun l ->
      Alcotest.(check (list string))
        (l ^ " sees through cycle") [ "bob" ]
        (Acl.expand_users t.Fix.mdb ~list_id:(lid t l)))
    [ "a"; "b"; "c" ];
  (* every list in the cycle contains bob, and each list contains the
     others (and itself) through the cycle *)
  let containers =
    sorted (Acl.containing_lists t.Fix.mdb ~mtype:"USER" ~mid:(uid t "bob"))
  in
  Alcotest.(check (list int)) "bob in all three"
    (sorted [ lid t "a"; lid t "b"; lid t "c" ])
    containers;
  check_agreement t [ "a"; "b"; "c" ]

let test_memo_refresh () =
  let t = Fix.create () in
  mklist t "crew";
  let c1 = Closure.get t.Fix.mdb in
  Alcotest.(check bool) "unchanged db, same closure" true
    (c1 == Closure.get t.Fix.mdb);
  addm t "crew" "USER" "bob";
  let c2 = Closure.get t.Fix.mdb in
  Alcotest.(check bool) "insert rebuilds" false (c1 == c2);
  Alcotest.(check (list int)) "insert visible" [ uid t "bob" ]
    (Closure.user_ids_of_list c2 ~list_id:(lid t "crew"));
  delm t "crew" "USER" "bob";
  let c3 = Closure.get t.Fix.mdb in
  Alcotest.(check bool) "delete rebuilds" false (c2 == c3);
  Alcotest.(check (list int)) "delete visible" []
    (Closure.user_ids_of_list c3 ~list_id:(lid t "crew"))

(* Randomized graphs: any edge set (self-loops, cycles, diamonds, and
   rejected duplicates included) must leave closure and naive walks in
   exact agreement. *)
let prop_matches_naive =
  QCheck.Test.make ~name:"closure: equals naive walks on random graphs"
    ~count:40
    QCheck.(
      pair
        (list_of_size (Gen.int_range 0 30)
           (pair (int_range 0 9) (int_range 0 9)))
        (list_of_size (Gen.int_range 0 6) (int_range 0 9)))
    (fun (edges, bob_lists) ->
      let t = Fix.create () in
      let g i = Printf.sprintf "g%d" i in
      for i = 0 to 9 do mklist t (g i) done;
      List.iter
        (fun (a, b) ->
          match
            Moira.Glue.query t.Fix.glue ~name:"add_member_to_list"
              [ g a; "LIST"; g b ]
          with
          | Ok _ | Error _ -> ())
        edges;
      List.iter
        (fun l ->
          match
            Moira.Glue.query t.Fix.glue ~name:"add_member_to_list"
              [ g l; "USER"; "bob" ]
          with
          | Ok _ | Error _ -> ())
        bob_lists;
      let lists = List.init 10 (fun i -> g i) in
      check_agreement t lists;
      true)

let suite =
  [
    Alcotest.test_case "diamond" `Quick test_diamond;
    Alcotest.test_case "cycle" `Quick test_cycle;
    Alcotest.test_case "memo refresh" `Quick test_memo_refresh;
    QCheck_alcotest.to_alcotest prop_matches_naive;
  ]
