(* End-to-end scenarios across the whole simulated Athena — the flows
   the paper's introduction motivates (section 3), plus disaster
   recovery (sections 5.2.2 and 5.9.1). *)

open Workload

let contains needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* Example 2 of section 3: a user adds themselves to a public mailing
   list from any workstation; "sometime later, the mailing lists file on
   the central mail hub will be updated to show this change". *)
let test_public_maillist_flow () =
  let tb = Testbed.create () in
  Testbed.run_hours tb 25; (* initial propagation *)
  let login = tb.Testbed.built.Population.logins.(5) in
  let ws = tb.Testbed.built.Population.workstation_machines.(1) in
  (* create a public list as admin *)
  let a = Testbed.admin_client tb ~src:ws in
  (match
     Moira.Mr_client.mr_query a ~name:"add_list"
       [ "hoofers"; "1"; "1"; "0"; "1"; "0"; "-1"; "LIST"; "moira-admins";
         "outing club" ] ~callback:(fun _ -> ())
   with
  | 0 -> ()
  | c -> Alcotest.fail (Comerr.Com_err.error_message c));
  (* the user adds herself over RPC *)
  let u = Testbed.user_client tb ~src:ws ~login in
  (match
     Moira.Mr_client.mr_query u ~name:"add_member_to_list"
       [ "hoofers"; "USER"; login ] ~callback:(fun _ -> ())
   with
  | 0 -> ()
  | c -> Alcotest.fail (Comerr.Com_err.error_message c));
  (* not yet on the hub *)
  let hub = Testbed.host tb tb.Testbed.built.Population.mail_hub in
  let aliases () =
    Option.value
      (Netsim.Vfs.read (Netsim.Host.fs hub) ~path:"/usr/lib/aliases")
      ~default:""
  in
  Alcotest.(check bool) "not yet propagated" false
    (contains "hoofers" (aliases ()));
  (* a day later it is *)
  Testbed.run_hours tb 25;
  let a = aliases () in
  Alcotest.(check bool) "list on hub" true (contains "hoofers:" a);
  Alcotest.(check bool) "user in list" true (contains login a)

(* Example 1 of section 3: the accounts administrator changes a disk
   quota from her workstation; the change automatically lands on the
   proper NFS server. *)
let test_quota_change_flow () =
  let tb = Testbed.create () in
  Testbed.run_hours tb 13;
  let login = tb.Testbed.built.Population.logins.(2) in
  let ws = tb.Testbed.built.Population.workstation_machines.(0) in
  (* find the user's uid and home server *)
  let uid =
    match
      Moira.Glue.query tb.Testbed.glue ~name:"get_user_by_login" [ login ]
    with
    | Ok [ row ] -> List.nth row 1
    | _ -> Alcotest.fail "lookup"
  in
  let home_machine =
    match
      Moira.Glue.query tb.Testbed.glue ~name:"get_filesys_by_label" [ login ]
    with
    | Ok (row :: _) -> List.nth row 2
    | _ -> Alcotest.fail "no home filesystem"
  in
  (* admin updates the quota over RPC *)
  let a = Testbed.admin_client tb ~src:ws in
  (match
     Moira.Mr_client.mr_query a ~name:"update_nfs_quota"
       [ login; login; "999" ] ~callback:(fun _ -> ())
   with
  | 0 -> ()
  | c -> Alcotest.fail (Comerr.Com_err.error_message c));
  (* after the NFS propagation interval, the server has it *)
  Testbed.run_hours tb 13;
  let fs = Netsim.Host.fs (Testbed.host tb home_machine) in
  match Netsim.Vfs.read fs ~path:("/var/moira/quotas/" ^ uid) with
  | Some q -> Alcotest.(check string) "quota on server" "999" q
  | None -> Alcotest.fail "quota file missing on home server"

(* Backup, wipe, restore, journal replay (section 5.2.2). *)
let test_disaster_recovery () =
  let tb = Testbed.create () in
  Testbed.run_hours tb 1;
  let mdb = tb.Testbed.mdb in
  let login = tb.Testbed.built.Population.logins.(0) in
  (* nightly.sh: take the dump *)
  Moira.Mdb.sync_tblstats mdb;
  let dump = Relation.Backup.dump (Moira.Mdb.db mdb) in
  let dump_time = Moira.Mdb.now mdb in
  (* changes after the dump, recorded in the journal *)
  Testbed.run_minutes tb 10;
  ignore
    (Moira.Glue.query tb.Testbed.glue ~name:"update_user_shell"
       [ login; "/bin/after-dump" ]);
  (* catastrophe: restore into a fresh database *)
  let clock = Sim.Engine.clock_sec tb.Testbed.engine in
  let mdb2 = Moira.Mdb.create ~clock in
  Relation.Backup.restore (Moira.Mdb.db mdb2) dump;
  (* the dump alone loses the late change *)
  let shell_of m =
    match
      Moira.Glue.query
        (Moira.Glue.create ~mdb:m ~registry:(Moira.Catalog.make ()) ())
        ~name:"get_user_by_login" [ login ]
    with
    | Ok [ row ] -> List.nth row 2
    | _ -> Alcotest.fail "lookup in restored db"
  in
  Alcotest.(check bool) "dump is stale" true
    (shell_of mdb2 <> "/bin/after-dump");
  (* replaying the journal closes the gap *)
  let glue2 =
    Moira.Glue.create ~mdb:mdb2 ~registry:(Moira.Catalog.make ()) ()
  in
  let replayed =
    Relation.Journal.replay (Moira.Mdb.journal mdb) ~since:dump_time
      ~f:(fun e ->
        ignore
          (Moira.Glue.query glue2 ~name:e.Relation.Journal.query
             e.Relation.Journal.args))
  in
  Alcotest.(check bool) "something replayed" true (replayed > 0);
  Alcotest.(check string) "change recovered" "/bin/after-dump"
    (shell_of mdb2)

(* The account lifecycle end to end, via the RPC interface only. *)
let test_admin_full_lifecycle_via_rpc () =
  let tb = Testbed.create () in
  Testbed.run_hours tb 7;
  let ws = tb.Testbed.built.Population.workstation_machines.(0) in
  let a = Testbed.admin_client tb ~src:ws in
  let q name args =
    match Moira.Mr_client.mr_query_list a ~name args with
    | Ok rows -> rows
    | Error c ->
        Alcotest.failf "%s: %s" name (Comerr.Com_err.error_message c)
  in
  (* create, register, activate *)
  ignore
    (q "add_user"
       [ Moira.Mrconst.unique_login; "9999"; "/bin/csh"; "Lifecycle"; "Liz";
         ""; "0"; "hash9999"; "1992" ]);
  ignore (q "register_user" [ "9999"; "liz"; "1" ]);
  ignore (q "update_user_status" [ "liz"; "1" ]);
  (* propagation makes her resolvable *)
  Testbed.run_hours tb 7;
  let _, hes = Testbed.first_hesiod tb in
  (match Hesiod.Hes_server.resolve_local hes ~name:"liz" ~ty:"passwd" with
  | [ _ ] -> ()
  | _ -> Alcotest.fail "liz not in hesiod");
  (* deactivate; after the next propagation she is gone from extracts *)
  ignore (q "update_user_status" [ "liz"; "3" ]);
  Testbed.run_hours tb 7;
  match Hesiod.Hes_server.resolve_local hes ~name:"liz" ~ty:"passwd" with
  | [] -> ()
  | _ -> Alcotest.fail "deactivated user still in hesiod"

(* The cluster data reaches hesiod including the pseudo-cluster CNAME
   for machines in several clusters. *)
let test_cluster_data_in_hesiod () =
  let tb = Testbed.create () in
  Testbed.run_hours tb 7;
  let _, hes = Testbed.first_hesiod tb in
  (* machine 0 of the small spec is in clusters 1 and 2 (i mod 17 = 0) *)
  let m = tb.Testbed.built.Population.workstation_machines.(0) in
  match Hesiod.Hes_server.resolve_local hes ~name:m ~ty:"cluster" with
  | data :: _ ->
      Alcotest.(check bool) "cluster data nonempty" true
        (String.length data > 0)
  | [] -> Alcotest.fail "no cluster data for multi-cluster machine"

(* Moira is "tamper-proof": a replayed authenticator does not yield a
   session (section 4 requirements). *)
let test_replay_attack_over_rpc () =
  let tb = Testbed.create () in
  let ws = tb.Testbed.built.Population.workstation_machines.(0) in
  let kdc = tb.Testbed.kdc in
  let creds =
    match
      Krb.Kdc.get_ticket kdc ~principal:"admin"
        ~password:tb.Testbed.built.Population.admin_password ~service:"moira"
    with
    | Ok c -> c
    | Error c -> Alcotest.fail (Comerr.Com_err.error_message c)
  in
  let authenticator = Krb.Kdc.mk_req kdc creds in
  let send_auth () =
    match
      Gdb.Client.connect tb.Testbed.net ~src:ws
        ~dst:tb.Testbed.built.Population.moira_machine ~service:"moira"
    with
    | Ok conn -> (
        match Gdb.Client.call conn ~op:17 (* op_auth *) [ authenticator; "evil" ] with
        | Ok (code, _) -> code
        | Error _ -> -1)
    | Error _ -> -1
  in
  Alcotest.(check int) "first use accepted" 0 (send_auth ());
  Alcotest.(check int) "replay rejected" Krb.Krb_err.replay (send_auth ())

(* The attach client: the full consumption pipeline of Figure 1, from
   the Moira database through the DCM and hesiod to a workstation. *)
let test_attach_client () =
  let tb = Testbed.create () in
  Testbed.run_hours tb 7;
  let ws = tb.Testbed.built.Population.workstation_machines.(3) in
  let locker = tb.Testbed.built.Population.logins.(1) in
  (match Workload.Attach.attach tb ~ws ~locker with
  | Ok fs ->
      Alcotest.(check string) "nfs" "NFS" fs.Workload.Attach.fstype;
      Alcotest.(check string) "mount point" ("/mit/" ^ locker)
        fs.Workload.Attach.mount;
      Alcotest.(check string) "write access" "w" fs.Workload.Attach.access
  | Error e -> Alcotest.fail (Workload.Attach.error_to_string e));
  Alcotest.(check int) "mtab has it" 1
    (List.length (Workload.Attach.attached tb ~ws));
  (* unknown locker *)
  match Workload.Attach.attach tb ~ws ~locker:"nonsuch" with
  | Error Workload.Attach.Unknown_locker -> ()
  | _ -> Alcotest.fail "unknown locker attached"

(* The KLOGIN extension generator: hostaccess rows become per-host
   .klogin files. *)
let test_klogin_generator () =
  let tb = Testbed.create () in
  let glue = tb.Testbed.glue in
  let m = tb.Testbed.built.Population.nfs_machines.(0) in
  ignore
    (Moira.Glue.query glue ~name:"add_server_host_access"
       [ m; "LIST"; "moira-admins" ]);
  let out = Dcm.Gen_klogin.generator.Dcm.Gen.generate glue in
  match out.Dcm.Gen.per_host with
  | [ (machine, [ (".klogin", contents) ]) ] ->
      Alcotest.(check string) "host" m machine;
      Alcotest.(check string) "admin principal"
        (tb.Testbed.built.Population.admin ^ "\n")
        (Dcm.Sink.to_string contents)
  | _ -> Alcotest.fail "expected one .klogin"

(* nightly.sh: rotation of the three on-line backups, and a restore
   from the latest plus journal replay. *)
let test_nightly_backup_rotation () =
  let tb = Testbed.create () in
  ignore (Workload.Backup_job.install tb ~every_hours:24);
  Alcotest.(check int) "none yet" 0 (Workload.Backup_job.generations tb);
  Testbed.run_hours tb 25;
  Alcotest.(check int) "one" 1 (Workload.Backup_job.generations tb);
  Testbed.run_hours tb 24;
  Testbed.run_hours tb 24;
  Testbed.run_hours tb 24;
  (* capped at three on line *)
  Alcotest.(check int) "three max" 3 (Workload.Backup_job.generations tb);
  (* the latest restores into a fresh database *)
  let mdb2 =
    Moira.Mdb.create ~clock:(Sim.Engine.clock_sec tb.Testbed.engine)
  in
  (match Workload.Backup_job.restore_latest tb mdb2 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "users restored"
    (Relation.Table.cardinal (Moira.Mdb.table tb.Testbed.mdb "users"))
    (Relation.Table.cardinal (Moira.Mdb.table mdb2 "users"));
  (* the dumped journal is readable *)
  match Workload.Backup_job.latest_journal tb with
  | Some j ->
      Alcotest.(check bool) "journal non-empty" true
        (Relation.Journal.length j > 0)
  | None -> Alcotest.fail "no journal in backup"

(* The server daemon's on-disk journal: committed changes reach the
   file immediately and survive a Moira host crash; after a crash +
   restore, the on-disk journal is the replay source. *)
let test_on_disk_journal () =
  let tb = Testbed.create () in
  let login = tb.Testbed.built.Population.logins.(0) in
  ignore
    (Moira.Glue.query tb.Testbed.glue ~name:"update_user_shell"
       [ login; "/bin/disk-journal" ]);
  (* the entry is on disk already *)
  (match Testbed.journal_file tb with
  | Some j ->
      Alcotest.(check bool) "entry on disk" true
        (List.exists
           (fun e ->
             e.Relation.Journal.query = "update_user_shell"
             && e.Relation.Journal.args = [ login; "/bin/disk-journal" ])
           (Relation.Journal.entries j))
  | None -> Alcotest.fail "no journal file");
  (* and it survives a crash of the Moira machine *)
  let moira = Testbed.host tb tb.Testbed.built.Population.moira_machine in
  Netsim.Host.crash moira;
  Netsim.Host.boot moira;
  match Testbed.journal_file tb with
  | Some j ->
      Alcotest.(check bool) "journal survives crash" true
        (Relation.Journal.length j > 0)
  | None -> Alcotest.fail "journal lost in crash"

(* Section 4: "Moira does not have to be 100% available.  Moira provides
   timely information to other services which are 100% available" — with
   the database machine down, every distributed service keeps working
   from its local files. *)
let test_services_survive_moira_outage () =
  let tb = Testbed.create () in
  Testbed.run_hours tb 25; (* everything propagated *)
  let ws = tb.Testbed.built.Population.workstation_machines.(0) in
  let login = tb.Testbed.built.Population.logins.(0) in
  Netsim.Host.crash (Testbed.host tb tb.Testbed.built.Population.moira_machine);
  (* hesiod still answers *)
  let hes_machine, _ = Testbed.first_hesiod tb in
  (match
     Hesiod.Hes_server.resolve tb.Testbed.net ~src:ws ~server:hes_machine
       ~name:login ~ty:"passwd"
   with
  | Ok [ _ ] -> ()
  | _ -> Alcotest.fail "hesiod died with moira");
  (* attach still works end to end *)
  (match Workload.Attach.attach tb ~ws ~locker:login with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Workload.Attach.error_to_string e));
  (* mail still flows *)
  (match
     Testbed.send_mail tb ~src:ws ~sender:"x@y.z" ~rcpt:login ~body:"up!"
   with
  | Ok 1 -> ()
  | _ -> Alcotest.fail "mail died with moira");
  (match Testbed.read_mail tb ~ws ~login with
  | Ok [ _ ] -> ()
  | _ -> Alcotest.fail "pobox retrieval died with moira");
  (* admin programs, of course, cannot reach the database *)
  let c = Testbed.client tb ~src:ws in
  Alcotest.(check bool) "moira itself is down" true
    (Moira.Mr_client.mr_connect c
       ~dst:tb.Testbed.built.Population.moira_machine
    <> 0);
  (* and when Moira returns, updates resume on schedule *)
  Netsim.Host.boot (Testbed.host tb tb.Testbed.built.Population.moira_machine);
  ignore
    (Moira.Glue.query tb.Testbed.glue ~name:"update_user_shell"
       [ login; "/bin/post-outage" ]);
  Testbed.run_hours tb 7;
  let _, hes = Testbed.first_hesiod tb in
  match Hesiod.Hes_server.resolve_local hes ~name:login ~ty:"passwd" with
  | [ line ] ->
      let suffix = "/bin/post-outage" in
      let n = String.length line and m = String.length suffix in
      Alcotest.(check string) "updates resumed" suffix
        (String.sub line (n - m) m)
  | _ -> Alcotest.fail "resolve after outage"

let suite =
  [
    Alcotest.test_case "public maillist flow" `Quick
      test_public_maillist_flow;
    Alcotest.test_case "quota change flow" `Quick test_quota_change_flow;
    Alcotest.test_case "disaster recovery" `Quick test_disaster_recovery;
    Alcotest.test_case "lifecycle via RPC" `Quick
      test_admin_full_lifecycle_via_rpc;
    Alcotest.test_case "cluster data in hesiod" `Quick
      test_cluster_data_in_hesiod;
    Alcotest.test_case "replay attack rejected" `Quick
      test_replay_attack_over_rpc;
    Alcotest.test_case "attach client" `Quick test_attach_client;
    Alcotest.test_case "klogin generator" `Quick test_klogin_generator;
    Alcotest.test_case "nightly backup rotation" `Quick
      test_nightly_backup_rotation;
    Alcotest.test_case "on-disk journal" `Quick test_on_disk_journal;
    Alcotest.test_case "services survive Moira outage" `Quick
      test_services_survive_moira_outage;
  ]
