(* The streaming document layer behind generator output: chunked docs
   must be byte-indistinguishable from the whole-string path they
   replaced, for every consumer — packer, checksummer, patch trims. *)

(* Build the same bytes two ways: one single-chunk doc, and one
   many-chunk doc assembled by sharing each piece's chunk (concat copies
   nothing, so every piece boundary becomes a chunk boundary).  All the
   chunk-walking code paths get exercised by the second form. *)
let chunky pieces = Dcm.Sink.concat (List.map Dcm.Sink.of_string pieces)

let gen_pieces =
  QCheck.(list_of_size (Gen.int_range 0 12) (string_of_size (Gen.int_range 0 9)))

let prop_doc_matches_string =
  QCheck.Test.make ~name:"sink: chunked doc behaves as the flat string"
    ~count:300 gen_pieces (fun pieces ->
      let s = String.concat "" pieces in
      let d = chunky pieces in
      Dcm.Sink.length d = String.length s
      && Dcm.Sink.to_string d = s
      && Dcm.Sink.equal d (Dcm.Sink.of_string s)
      && (s = ""
         || Dcm.Sink.get d (String.length s - 1) = s.[String.length s - 1])
      && Dcm.Sink.sub d 0 (String.length s) = s
      && (String.length s < 2
         || Dcm.Sink.sub d 1 (String.length s - 2)
            = String.sub s 1 (String.length s - 2)))

let prop_prefix_suffix =
  QCheck.Test.make ~name:"sink: common prefix/suffix match naive string scan"
    ~count:300
    QCheck.(pair gen_pieces gen_pieces)
    (fun (pa, pb) ->
      let a = String.concat "" pa and b = String.concat "" pb in
      let da = chunky pa and db = chunky pb in
      let naive_prefix =
        let n = min (String.length a) (String.length b) in
        let i = ref 0 in
        while !i < n && a.[!i] = b.[!i] do incr i done;
        !i
      in
      let p = Dcm.Sink.common_prefix da db in
      let limit = min (String.length a) (String.length b) - p in
      let naive_suffix =
        let i = ref 0 in
        while
          !i < limit
          && a.[String.length a - 1 - !i] = b.[String.length b - 1 - !i]
        do incr i done;
        !i
      in
      p = naive_prefix
      && Dcm.Sink.common_suffix ~limit da db = naive_suffix
      && Dcm.Sink.equal da db = (a = b))

let prop_writer_matches_buffer =
  QCheck.Test.make ~name:"sink: writer output equals Buffer reference"
    ~count:200 gen_pieces (fun pieces ->
      let w = Dcm.Sink.create ~hint:8 () in
      List.iteri
        (fun i s ->
          (* alternate the writer's entry points *)
          if i mod 3 = 2 then Dcm.Sink.add_doc w (Dcm.Sink.of_string s)
          else Dcm.Sink.add_string w s;
          if i mod 2 = 0 then Dcm.Sink.add_char w ',')
        pieces;
      let reference =
        String.concat ""
          (List.mapi
             (fun i s -> if i mod 2 = 0 then s ^ "," else s)
             pieces)
      in
      Dcm.Sink.written w = String.length reference
      && Dcm.Sink.to_string (Dcm.Sink.contents w) = reference)

let test_writer_chunk_rollover () =
  (* push well past one 256 KB chunk so the flush path runs; bytes must
     come back exactly, across the chunk seams *)
  let piece = String.init 4096 (fun i -> Char.chr (33 + (i mod 90))) in
  let w = Dcm.Sink.create () in
  for _ = 1 to 80 do
    Dcm.Sink.add_string w piece
  done;
  let d = Dcm.Sink.contents w in
  Alcotest.(check int) "length" (80 * 4096) (Dcm.Sink.length d);
  let b = Buffer.create (80 * 4096) in
  for _ = 1 to 80 do
    Buffer.add_string b piece
  done;
  Alcotest.(check bool) "bytes identical across chunk seams" true
    (Dcm.Sink.to_string d = Buffer.contents b);
  Alcotest.(check bool) "doc-level compare agrees" true
    (Dcm.Sink.equal d (Dcm.Sink.of_string (Buffer.contents b)))

(* --- the archive/checksum consumers: streamed docs vs materialized
       strings must produce identical artifacts --- *)

let prop_pack_docs_identical =
  QCheck.Test.make
    ~name:"tarlike: pack_docs/checksum_docs equal the string path"
    ~count:150
    QCheck.(
      list_of_size (Gen.int_range 0 5)
        (pair (string_of_size (Gen.int_range 1 12)) gen_pieces))
    (fun members ->
      let docs = List.map (fun (n, pieces) -> (n, chunky pieces)) members in
      let strings =
        List.map (fun (n, pieces) -> (n, String.concat "" pieces)) members
      in
      let packed = Dcm.Tarlike.pack strings in
      Dcm.Tarlike.pack_docs docs = packed
      && Dcm.Tarlike.packed_size_docs docs = String.length packed
      && Dcm.Tarlike.checksum_docs docs = Dcm.Tarlike.checksum strings
      && Dcm.Tarlike.unpack (Dcm.Tarlike.pack_docs docs) = Ok strings)

let prop_checksum_stream_doc =
  QCheck.Test.make ~name:"checksum: adler32_doc equals adler32 of the bytes"
    ~count:200 gen_pieces (fun pieces ->
      Dcm.Checksum.adler32_doc (chunky pieces)
      = Dcm.Checksum.adler32 (String.concat "" pieces))

(* --- end to end: a campus's generated archives are identical whether
       the members travel as docs or as materialized strings --- *)

let test_generator_outputs_byte_identical () =
  let tb = Workload.Testbed.create () in
  Sim.Engine.advance tb.Workload.Testbed.engine (7 * 3600 * 1000);
  ignore (Dcm.Manager.run tb.Workload.Testbed.dcm);
  List.iter
    (fun service ->
      match
        Dcm.Manager.last_output tb.Workload.Testbed.dcm ~service
      with
      | None -> Alcotest.failf "%s produced no output" service
      | Some out ->
          let check_files files =
            let strings =
              List.map (fun (n, d) -> (n, Dcm.Sink.to_string d)) files
            in
            Alcotest.(check string)
              (service ^ " archive identical")
              (Dcm.Tarlike.pack strings)
              (Dcm.Tarlike.pack_docs files);
            Alcotest.(check string)
              (service ^ " archive checksum identical")
              (Dcm.Checksum.to_hex (Dcm.Tarlike.checksum strings))
              (Dcm.Checksum.to_hex (Dcm.Tarlike.checksum_docs files))
          in
          check_files out.Dcm.Gen.common;
          List.iter (fun (_, files) -> check_files files) out.Dcm.Gen.per_host)
    [ "HESIOD"; "NFS"; "MAIL"; "ZEPHYR" ]

let suite =
  [
    QCheck_alcotest.to_alcotest prop_doc_matches_string;
    QCheck_alcotest.to_alcotest prop_prefix_suffix;
    QCheck_alcotest.to_alcotest prop_writer_matches_buffer;
    Alcotest.test_case "writer chunk rollover" `Quick
      test_writer_chunk_rollover;
    QCheck_alcotest.to_alcotest prop_pack_docs_identical;
    QCheck_alcotest.to_alcotest prop_checksum_stream_doc;
    Alcotest.test_case "campus outputs byte-identical" `Quick
      test_generator_outputs_byte_identical;
  ]
