(* An mrtest-style admin client: boots a small simulated Athena, connects
   and authenticates through the real application library, then executes
   query handles typed on the command line or on stdin.

     dune exec bin/moira_cli.exe -- query get_user_by_login 'a*'
     dune exec bin/moira_cli.exe -- list_queries
     dune exec bin/moira_cli.exe -- help gubl
     echo 'get_machine *' | dune exec bin/moira_cli.exe -- shell        *)

open Cmdliner
open Workload

let with_client ~users f =
  let spec = { Population.small with Population.users } in
  let tb = Testbed.create ~spec () in
  let ws = tb.Testbed.built.Population.workstation_machines.(0) in
  let c = Testbed.admin_client tb ~src:ws in
  f tb c

let print_reply name code tuples =
  if code <> 0 then begin
    Printf.printf "%s: %s\n" name (Comerr.Com_err.error_message code);
    1
  end
  else begin
    List.iter
      (fun tuple -> Printf.printf "%s\n" (String.concat ", " tuple))
      tuples;
    Printf.printf "(%d tuple%s)\n" (List.length tuples)
      (if List.length tuples = 1 then "" else "s");
    0
  end

let run_one c name args =
  match Moira.Mr_client.mr_query_list c ~name args with
  | Ok tuples -> print_reply name 0 tuples
  | Error code -> print_reply name code []

let users_arg =
  let doc = "Size of the simulated user population." in
  Arg.(value & opt int 60 & info [ "users" ] ~docv:"N" ~doc)

let query_cmd =
  let args =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"QUERY [ARG...]")
  in
  let run users = function
    | name :: rest -> with_client ~users (fun _ c -> run_one c name rest)
    | [] -> 1
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Run one predefined query handle.")
    Term.(const run $ users_arg $ args)

let access_cmd =
  let args =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"QUERY [ARG...]")
  in
  let run users = function
    | name :: rest ->
        with_client ~users (fun _ c ->
            let code = Moira.Mr_client.mr_access c ~name rest in
            Printf.printf "%s\n"
              (if code = 0 then "allowed" else Comerr.Com_err.error_message code);
            0)
    | [] -> 1
  in
  Cmd.v
    (Cmd.info "access" ~doc:"Check access to a query without running it.")
    Term.(const run $ users_arg $ args)

let list_queries_cmd =
  let run users =
    with_client ~users (fun _ c -> run_one c "_list_queries" [])
  in
  Cmd.v
    (Cmd.info "list_queries" ~doc:"List every query handle.")
    Term.(const run $ users_arg)

let help_cmd =
  let qname =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY")
  in
  let run users qname =
    with_client ~users (fun _ c -> run_one c "_help" [ qname ])
  in
  Cmd.v
    (Cmd.info "help" ~doc:"Describe one query handle's signature.")
    Term.(const run $ users_arg $ qname)

let shell_cmd =
  let run users =
    with_client ~users (fun _ c ->
        Printf.printf
          "moira shell: '<query> [args...]' per line; EOF to quit\n%!";
        (try
           while true do
             let fields =
               String.split_on_char ' ' (String.trim (input_line stdin))
               |> List.filter (fun s -> s <> "")
             in
             match fields with
             | [] -> ()
             | name :: args ->
                 ignore (run_one c name args);
                 print_newline ()
           done
         with End_of_file -> ());
        0)
  in
  Cmd.v
    (Cmd.info "shell" ~doc:"Read query lines from stdin.")
    Term.(const run $ users_arg)

(* A little traffic (client queries plus a couple of DCM cron fires) so
   the registry has something to show before we read it back. *)
let warm tb c =
  let logins = tb.Testbed.built.Population.logins in
  Array.iteri
    (fun i login ->
      if i < 8 then
        ignore
          (Moira.Mr_client.mr_query_list c ~name:"get_user_by_login" [ login ]))
    logins;
  Testbed.run_minutes tb 35

let stats_cmd =
  let pattern =
    let doc = "Metric-name glob ([*] matches any run of characters)." in
    Arg.(value & pos 0 string "*" & info [] ~docv:"PATTERN" ~doc)
  in
  let run users pattern =
    with_client ~users (fun tb c ->
        warm tb c;
        Printf.printf "-- counters and gauges matching %s\n" pattern;
        let rc1 = run_one c "_get_server_statistics" [ pattern ] in
        Printf.printf "\n-- latency histograms matching %s\n" pattern;
        ignore (run_one c "_get_query_statistics" [ pattern ]);
        Printf.printf "\n-- slow-query log\n";
        ignore (run_one c "_get_slow_queries" []);
        Printf.printf "\n-- network health (per-link drops, waste, latency)\n";
        ignore (run_one c "_get_server_statistics" [ "net.link.*" ]);
        rc1)
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run a short workload and read the server's telemetry back through \
          the _get_server_statistics query family.")
    Term.(const run $ users_arg $ pattern)

let trace_cmd =
  let out =
    let doc = "Output file (Chrome trace_event JSON)." in
    Arg.(value & opt string "trace.json" & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let id =
    let doc =
      "Keep only the end-to-end trace with this id (as tagged on \
       slow-query rows and span args)."
    in
    Arg.(value & opt (some string) None & info [ "id" ] ~docv:"TRACE" ~doc)
  in
  let run users out id =
    with_client ~users (fun tb c ->
        Netsim.Net.set_trace_calls tb.Testbed.net true;
        warm tb c;
        (* a write makes sure at least one trace crosses machines:
           client -> server -> journal -> DCM -> serving hosts *)
        let login = tb.Testbed.built.Population.logins.(0) in
        ignore
          (Moira.Mr_client.mr_query_list c ~name:"update_user_shell"
             [ login; "/bin/traced" ]);
        (* long enough for the slowest affected service interval
           (HESIOD regenerates every 6 simulated hours) to propagate
           the write to its serving hosts *)
        Testbed.run_minutes tb ((6 * 60) + 30);
        let json = Testbed.trace_json ?trace:id tb in
        let oc = open_out out in
        output_string oc json;
        close_out oc;
        Printf.printf
          "wrote %s (%d bytes); load it in chrome://tracing or ui.perfetto.dev\n"
          out (String.length json);
        0)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a short workload with call tracing on and dump every host \
          lane, stitched, as a Chrome-loadable trace; --id filters to one \
          end-to-end trace.")
    Term.(const run $ users_arg $ out $ id)

let health_cmd =
  let run users =
    with_client ~users (fun tb c ->
        warm tb c;
        match Moira.Mr_client.mr_query_list c ~name:"_get_slo_status" [] with
        | Error code ->
            Printf.printf "health: %s\n" (Comerr.Com_err.error_message code);
            1
        | Ok rows ->
            let worst = ref 0 in
            List.iter
              (fun row ->
                match row with
                | [ name; metric; stat; op; thr; window_s; value; samples;
                    verdict ] ->
                    (if verdict = "red" then worst := max !worst 2
                     else if verdict = "yellow" then worst := max !worst 1);
                    Printf.printf "%-6s %-24s %s(%s) = %s %s %s%s (n=%s)\n"
                      (String.uppercase_ascii verdict)
                      name metric stat value op thr
                      (if window_s = "0" then ""
                       else Printf.sprintf " over %ss" window_s)
                      samples
                | _ -> ())
              rows;
            Printf.printf "health: %s\n"
              (match !worst with
              | 0 -> "green"
              | 1 -> "yellow"
              | _ -> "red");
            if !worst = 2 then 1 else 0)
  in
  Cmd.v
    (Cmd.info "health"
       ~doc:
         "Run a short workload and grade every declared SLO \
          (red/yellow/green) from the _get_slo_status query; nonzero exit \
          when any objective is red.")
    Term.(const run $ users_arg)

let check_cmd =
  let run users =
    with_client ~users (fun _tb c ->
        let drift =
          match
            Moira.Mr_client.mr_query_list c ~name:"_check_integrity" []
          with
          | Ok rows -> rows
          | Error code ->
              [ [ "query-error"; "_check_integrity";
                  Comerr.Com_err.error_message code ] ]
        in
        let gens =
          Dcm.Manager.check_generators Dcm.Manager.standard_generators
        in
        List.iter
          (fun row -> print_endline (String.concat ": " row))
          drift;
        List.iter (fun x -> print_endline (Moira.Check.pp x)) gens;
        if drift = [] && gens = [] then begin
          Printf.printf
            "check: query registry and DCM generators consistent with \
             Schema_def\n";
          0
        end
        else begin
          Printf.printf "check: %d finding(s)\n"
            (List.length drift + List.length gens);
          1
        end)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Cross-check every query handle and DCM generator against \
          Schema_def (the _check_integrity query plus the generator \
          watch-list validator); nonzero exit on any drift.")
    Term.(const run $ users_arg)

let () =
  let info =
    Cmd.info "moira_cli"
      ~doc:
        "An admin client for a simulated Athena: connects to the Moira \
         server through the application library and runs query handles."
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            query_cmd; access_cmd; list_queries_cmd; help_cmd; shell_cmd;
            stats_cmd; trace_cmd; health_cmd; check_cmd;
          ]))
