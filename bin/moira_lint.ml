(* moira_lint — run the Lint rules over the tree; exit nonzero listing
   file:line:rule on any violation.  Usage: moira_lint [path ...]
   (defaults to lib bin test bench, resolved from the cwd). *)

let () =
  let roots =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as paths) -> paths
    | _ -> List.filter Sys.file_exists Lint.default_roots
  in
  if roots = [] then begin
    prerr_endline
      "moira_lint: no roots found (run from the repo root or pass paths)";
    exit 2
  end;
  let files = List.concat_map Lint.files_under roots in
  let violations = List.concat_map Lint.lint_file files in
  if violations = [] then
    Printf.printf "moira_lint: %d files clean\n" (List.length files)
  else begin
    List.iter
      (fun v -> print_endline (Lint.pp_violation v))
      violations;
    Printf.printf "moira_lint: %d violation(s) in %d files\n"
      (List.length violations)
      (List.length
         (List.sort_uniq String.compare
            (List.map (fun v -> v.Lint.v_file) violations)));
    exit 1
  end
